// Figure 13 extension: rack-scale incast across a multi-switch leaf-spine
// fabric (16 hosts behind 4 leaves + 2 spines) with shared-buffer DT
// switches, revisiting EXPERIMENTS.md deviation #6. The single-star runs
// kept fabric drops at ~<=1e-5 because a 512 KB *per-port* buffer under
// DCTCP never fills; with a realistically shallow *shared* pool (256 KiB
// across all 5+ ports, DT alpha 1), steady-state incast drop fractions
// land in the paper's 1e-4..1e-2 band and grow with fan-in.
//
//   (a) fabric congestion only: fan-in sweep, wire-limited senders
//   (b) host + fabric congestion at full fan-in: hostCC off vs on
//   (c) deep-buffer reference (the seed's effective regime): drops vanish
//
// Observability modes (both switch the long flows to closed-loop 64 KiB
// messages so FlowStats has real completion episodes):
//   --json            machine-readable results on stdout, including
//                     P50/P99/P99.9 FCT per fan-in. No wall-clock fields,
//                     so repeated runs are byte-identical.
//   --telemetry DIR   per-run fabric occupancy time-series: DIR/<tag>.csv
//                     (wide CSV) and DIR/<tag>_trace.json (Chrome counter
//                     tracks), also byte-identical across repeats.
//
// Every run audits each switch's shared-buffer ledger; a violation fails
// the binary.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/fabric_scenario.h"
#include "exp/table.h"

using namespace hostcc;

namespace {

struct Options {
  bool quick = false;
  bool json = false;
  int shards = 0;  // 0 = classic single loop; N >= 1 sharded (same bytes)
  std::string telemetry_dir;
  bool obs() const { return json || !telemetry_dir.empty(); }
};

exp::FabricScenarioConfig base_cfg(const Options& opt) {
  exp::FabricScenarioConfig cfg;
  cfg.topology = "leaf-spine:4x4";  // 16 hosts, 4 leaves + 2 spines
  cfg.flows_per_pair = 4;
  cfg.mapp_degree = 0.0;
  cfg.fabric.buffer_bytes = 256 * sim::kKiB;  // shallow shared pool
  cfg.shards = opt.shards;
  cfg.warmup = sim::Time::milliseconds(opt.quick ? 2 : 5);
  cfg.measure = sim::Time::milliseconds(opt.quick ? 3 : 10);
  if (opt.obs()) {
    cfg.record_flow_stats = true;
    cfg.flow_bytes = 64 * sim::kKiB;  // closed-loop messages -> real FCTs
    cfg.telemetry = !opt.telemetry_dir.empty();
  }
  return cfg;
}

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

// Writes the run's sampled occupancy series as DIR/<tag>.csv plus Chrome
// counter tracks as DIR/<tag>_trace.json. Returns false on I/O failure.
bool dump_telemetry(exp::FabricScenario& s, const std::string& dir, const std::string& tag) {
  {
    std::ofstream out(dir + "/" + tag + ".csv");
    if (!out) {
      std::fprintf(stderr, "cannot open %s/%s.csv\n", dir.c_str(), tag.c_str());
      return false;
    }
    s.telemetry().write_csv(out);
  }
  std::ofstream out(dir + "/" + tag + "_trace.json");
  if (!out) {
    std::fprintf(stderr, "cannot open %s/%s_trace.json\n", dir.c_str(), tag.c_str());
    return false;
  }
  s.telemetry().write_chrome_json(out);
  return true;
}

// One JSON result object (shared shape across the three sections). The
// fct block comes straight from FlowStats' exact-integer renderer, so the
// whole object is byte-stable across repeated runs.
std::string result_json(exp::FabricScenario& s, const exp::FabricScenarioResults& r,
                        const std::string& extra_fields) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{%s\"net_tput_gbps\":%.4f,\"fabric_drop_frac\":%.3e,"
                "\"host_drop_rate_pct\":%.6f,\"fabric_drops\":%llu,\"fabric_marks\":%llu,"
                "\"occupancy_peak_kib\":%lld,\"flow_episodes\":%llu,"
                "\"invariant_violations\":%llu,\"fct\":",
                extra_fields.c_str(), r.net_tput_gbps, r.fabric_drop_frac,
                r.host_drop_rate_pct, static_cast<unsigned long long>(r.fabric_drops),
                static_cast<unsigned long long>(r.fabric_marks),
                static_cast<long long>(r.fabric_occupancy_peak / sim::kKiB),
                static_cast<unsigned long long>(r.flow_episodes),
                static_cast<unsigned long long>(r.invariant_violations));
  std::ostringstream os;
  os << buf;
  s.flow_stats().write_json_summary(os);
  os << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--json") {
      opt.json = true;
    } else if (a == "--telemetry" && i + 1 < argc) {
      opt.telemetry_dir = argv[++i];
    } else if (a == "--shards" && i + 1 < argc) {
      opt.shards = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json] [--shards N] [--telemetry DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  std::uint64_t violations = 0;
  std::vector<std::string> sweep_json, ab_json;
  std::string deep_json;

  if (!opt.json) {
    std::printf(
        "=== Figure 13x: rack-scale incast over a shared-buffer leaf-spine fabric ===\n\n");
    std::printf("-- (a) fabric congestion only: fan-in sweep (256 KiB shared buffer) --\n");
  }
  exp::Table ta({"fan_in", "hosts", "net_tput_gbps", "drop_frac", "marks", "occ_peak_kib",
                 "inv"});
  for (const int hosts : {5, 9, 13, 16}) {
    exp::FabricScenarioConfig cfg = base_cfg(opt);
    cfg.hosts = hosts;
    exp::FabricScenario s(std::move(cfg));
    const auto r = s.run();
    violations += r.invariant_violations;
    if (!opt.telemetry_dir.empty() &&
        !dump_telemetry(s, opt.telemetry_dir, "fanin" + std::to_string(hosts - 1))) {
      return 1;
    }
    if (opt.json) {
      sweep_json.push_back(result_json(
          s, r, "\"fan_in\":" + std::to_string(hosts - 1) +
                    ",\"hosts\":" + std::to_string(hosts) + ","));
    }
    ta.add_row({std::to_string(hosts - 1), std::to_string(hosts), exp::fmt(r.net_tput_gbps),
                sci(r.fabric_drop_frac), std::to_string(r.fabric_marks),
                std::to_string(r.fabric_occupancy_peak / sim::kKiB),
                std::to_string(r.invariant_violations)});
  }
  if (!opt.json) ta.print();

  if (!opt.json) {
    std::printf(
        "\n-- (b) host + fabric congestion, full fan-in (15 -> 1): hostCC off vs on --\n");
  }
  exp::Table tb({"mode", "net_tput_gbps", "drop_frac", "host_drop_pct", "marks",
                 "avg_iio_occ", "inv"});
  for (const bool hostcc : {false, true}) {
    exp::FabricScenarioConfig cfg = base_cfg(opt);
    cfg.mapp_degree = 2.0;
    cfg.hostcc_enabled = hostcc;
    exp::FabricScenario s(std::move(cfg));
    const auto r = s.run();
    violations += r.invariant_violations;
    const std::string mode = hostcc ? "dctcp+hostcc" : "dctcp";
    if (!opt.telemetry_dir.empty() &&
        !dump_telemetry(s, opt.telemetry_dir, hostcc ? "hostcc_on" : "hostcc_off")) {
      return 1;
    }
    if (opt.json) ab_json.push_back(result_json(s, r, "\"mode\":\"" + mode + "\","));
    tb.add_row({mode, exp::fmt(r.net_tput_gbps), sci(r.fabric_drop_frac),
                exp::fmt_rate(r.host_drop_rate_pct), std::to_string(r.fabric_marks),
                exp::fmt(r.avg_iio_occupancy), std::to_string(r.invariant_violations)});
  }
  if (!opt.json) tb.print();

  if (!opt.json) {
    std::printf("\n-- (c) deep-buffer reference (2 MiB shared: the seed's regime) --\n");
  }
  exp::Table tc({"buffer_kib", "net_tput_gbps", "drop_frac", "marks", "inv"});
  {
    exp::FabricScenarioConfig cfg = base_cfg(opt);
    cfg.fabric.buffer_bytes = 2 * sim::kMiB;
    exp::FabricScenario s(std::move(cfg));
    const auto r = s.run();
    violations += r.invariant_violations;
    if (!opt.telemetry_dir.empty() && !dump_telemetry(s, opt.telemetry_dir, "deep_buffer")) {
      return 1;
    }
    if (opt.json) {
      deep_json = result_json(s, r, "\"buffer_kib\":" +
                                        std::to_string(2 * sim::kMiB / sim::kKiB) + ",");
    }
    tc.add_row({std::to_string(2 * sim::kMiB / sim::kKiB), exp::fmt(r.net_tput_gbps),
                sci(r.fabric_drop_frac), std::to_string(r.fabric_marks),
                std::to_string(r.invariant_violations)});
  }
  if (!opt.json) tc.print();

  if (opt.json) {
    std::printf("{\n  \"fan_in_sweep\": [");
    for (std::size_t i = 0; i < sweep_json.size(); ++i) {
      std::printf("%s\n    %s", i ? "," : "", sweep_json[i].c_str());
    }
    std::printf("\n  ],\n  \"hostcc_ab\": [");
    for (std::size_t i = 0; i < ab_json.size(); ++i) {
      std::printf("%s\n    %s", i ? "," : "", ab_json[i].c_str());
    }
    std::printf("\n  ],\n  \"deep_buffer\": %s\n}\n", deep_json.c_str());
  } else {
    std::printf("\n(Paper Fig. 13a: incast drop rates 1e-4 -> 1e-2 growing with fan-in. The\n"
                " shallow shared pool reproduces the band; hostCC moves the bottleneck into\n"
                " the host and relieves the fabric, same as the paper's combined runs.)\n");
  }

  if (violations > 0) {
    std::fprintf(stderr, "FAIL: %llu shared-buffer ledger violation(s)\n",
                 static_cast<unsigned long long>(violations));
    return 1;
  }
  return 0;
}
