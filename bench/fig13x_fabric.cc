// Figure 13 extension: rack-scale incast across a multi-switch leaf-spine
// fabric (16 hosts behind 4 leaves + 2 spines) with shared-buffer DT
// switches, revisiting EXPERIMENTS.md deviation #6. The single-star runs
// kept fabric drops at ~<=1e-5 because a 512 KB *per-port* buffer under
// DCTCP never fills; with a realistically shallow *shared* pool (256 KiB
// across all 5+ ports, DT alpha 1), steady-state incast drop fractions
// land in the paper's 1e-4..1e-2 band and grow with fan-in.
//
//   (a) fabric congestion only: fan-in sweep, wire-limited senders
//   (b) host + fabric congestion at full fan-in: hostCC off vs on
//   (c) deep-buffer reference (the seed's effective regime): drops vanish
//
// Every run audits each switch's shared-buffer ledger; a violation fails
// the binary.
#include <cstdio>
#include <string>

#include "exp/fabric_scenario.h"
#include "exp/table.h"

using namespace hostcc;

namespace {

exp::FabricScenarioConfig base_cfg(bool quick) {
  exp::FabricScenarioConfig cfg;
  cfg.topology = "leaf-spine:4x4";  // 16 hosts, 4 leaves + 2 spines
  cfg.flows_per_pair = 4;
  cfg.mapp_degree = 0.0;
  cfg.fabric.buffer_bytes = 256 * sim::kKiB;  // shallow shared pool
  cfg.warmup = sim::Time::milliseconds(quick ? 2 : 5);
  cfg.measure = sim::Time::milliseconds(quick ? 3 : 10);
  return cfg;
}

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::uint64_t violations = 0;

  std::printf("=== Figure 13x: rack-scale incast over a shared-buffer leaf-spine fabric ===\n\n");

  std::printf("-- (a) fabric congestion only: fan-in sweep (256 KiB shared buffer) --\n");
  exp::Table ta({"fan_in", "hosts", "net_tput_gbps", "drop_frac", "marks", "occ_peak_kib",
                 "inv"});
  for (const int hosts : {5, 9, 13, 16}) {
    exp::FabricScenarioConfig cfg = base_cfg(quick);
    cfg.hosts = hosts;
    exp::FabricScenario s(std::move(cfg));
    const auto r = s.run();
    violations += r.invariant_violations;
    ta.add_row({std::to_string(hosts - 1), std::to_string(hosts), exp::fmt(r.net_tput_gbps),
                sci(r.fabric_drop_frac), std::to_string(r.fabric_marks),
                std::to_string(r.fabric_occupancy_peak / sim::kKiB),
                std::to_string(r.invariant_violations)});
  }
  ta.print();

  std::printf("\n-- (b) host + fabric congestion, full fan-in (15 -> 1): hostCC off vs on --\n");
  exp::Table tb({"mode", "net_tput_gbps", "drop_frac", "host_drop_pct", "marks",
                 "avg_iio_occ", "inv"});
  for (const bool hostcc : {false, true}) {
    exp::FabricScenarioConfig cfg = base_cfg(quick);
    cfg.mapp_degree = 2.0;
    cfg.hostcc_enabled = hostcc;
    exp::FabricScenario s(std::move(cfg));
    const auto r = s.run();
    violations += r.invariant_violations;
    tb.add_row({hostcc ? "dctcp+hostcc" : "dctcp", exp::fmt(r.net_tput_gbps),
                sci(r.fabric_drop_frac), exp::fmt_rate(r.host_drop_rate_pct),
                std::to_string(r.fabric_marks), exp::fmt(r.avg_iio_occupancy),
                std::to_string(r.invariant_violations)});
  }
  tb.print();

  std::printf("\n-- (c) deep-buffer reference (2 MiB shared: the seed's regime) --\n");
  exp::Table tc({"buffer_kib", "net_tput_gbps", "drop_frac", "marks", "inv"});
  {
    exp::FabricScenarioConfig cfg = base_cfg(quick);
    cfg.fabric.buffer_bytes = 2 * sim::kMiB;
    exp::FabricScenario s(std::move(cfg));
    const auto r = s.run();
    violations += r.invariant_violations;
    tc.add_row({std::to_string(2 * sim::kMiB / sim::kKiB), exp::fmt(r.net_tput_gbps),
                sci(r.fabric_drop_frac), std::to_string(r.fabric_marks),
                std::to_string(r.invariant_violations)});
  }
  tc.print();

  std::printf("\n(Paper Fig. 13a: incast drop rates 1e-4 -> 1e-2 growing with fan-in. The\n"
              " shallow shared pool reproduces the band; hostCC moves the bottleneck into\n"
              " the host and relieves the fabric, same as the paper's combined runs.)\n");

  if (violations > 0) {
    std::fprintf(stderr, "FAIL: %llu shared-buffer ledger violation(s)\n",
                 static_cast<unsigned long long>(violations));
    return 1;
  }
  return 0;
}
