// Figure 2 reproduction: host congestion (0x..3x MApp intensity) vs.
// network throughput, packet drop rate, and the memory-bandwidth split
// between NetApp-T and MApp — with DDIO disabled and enabled.
// Paper: throughput 100 -> ~43Gbps at 3x (DDIO off), drops up to ~0.3%,
// MApp acquiring an increasing share of memory bandwidth.
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Figure 2: impact of host congestion on network traffic ===\n");
  std::printf("Setup: NetApp-T (4 DCTCP flows, 100Gbps) + MApp sweep at the receiver.\n\n");

  for (const bool ddio : {false, true}) {
    exp::Table t({"degree", "ddio", "net_tput_gbps", "drop_rate_pct", "netapp_mem_util",
                  "mapp_mem_util", "total_mem_util", "avg_IS", "avg_BS_gbps"});
    for (const double degree : {0.0, 1.0, 2.0, 3.0}) {
      exp::ScenarioConfig cfg;
      cfg.host.ddio_enabled = ddio;
      cfg.mapp_degree = degree;
      cfg.record_signals = true;
      if (quick) {
        cfg.warmup = sim::Time::milliseconds(60);
        cfg.measure = sim::Time::milliseconds(60);
      }
      exp::Scenario s(cfg);
      const auto r = s.run();
      t.add_row({exp::fmt(degree, 0) + "x", ddio ? "on" : "off", exp::fmt(r.net_tput_gbps),
                 exp::fmt_rate(r.host_drop_rate_pct), exp::fmt(r.net_mem_util),
                 exp::fmt(r.mapp_mem_util), exp::fmt(r.mem_util), exp::fmt(r.avg_iio_occupancy, 1),
                 exp::fmt(r.avg_pcie_gbps, 1)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("(Paper, DDIO off: tput ~100/85/60/43 Gbps; drops reaching ~0.3%%;\n"
              " MApp memory share growing with degree while NetApp-T's shrinks.)\n");
  return 0;
}
