// Figure 23 (repo extension): hybrid-fidelity scaling. How large an
// incast fabric can one core sustain when only congested hosts pay
// packet-level prices?
//
//   (a) accuracy: the same 64-host incast under --fidelity full vs auto.
//       The victim runs the identical packet-level HostModel in both, so
//       its FCT percentiles and drop rate must agree within 10% — the
//       analytic senders only approximate pacing on the victim's ingress.
//   (b) scale: auto-fidelity incasts at 64..640 hosts. The acceptance bar
//       is >= 10x the all-full host count at no more wall clock than the
//       64-host all-full baseline.
//
// Closed-loop 64 KiB messages give FlowStats real completion episodes
// (FCT percentiles measure the victim's ingress pipeline). Every run
// audits conservation invariants; a violation fails the binary, as does
// missing either acceptance bar.
//
//   --quick   shorter windows (CI smoke)
//   --json    machine-readable rows (no wall-clock fields)
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "exp/fabric_scenario.h"
#include "exp/table.h"

using namespace hostcc;

namespace {

struct RunOut {
  exp::FabricScenarioResults r;
  double wall_ms = 0.0;
  int hosts = 0;
  std::string mode;
};

RunOut run_one(const std::string& mode, int hosts, exp::HostFidelity fid, bool quick) {
  exp::FabricScenarioConfig cfg;
  // 64 hosts fit leaf-spine:8x8; the scale rows widen the same fabric
  // shape (40 hosts per leaf) instead of deepening it, so the victim's
  // leaf fan-in grows with the host count the way an incast's would.
  cfg.topology = hosts <= 64 ? "leaf-spine:8x8" : "leaf-spine:16x40";
  cfg.hosts = hosts;
  cfg.fidelity = fid;
  cfg.mapp_degree = 0.0;
  cfg.flow_bytes = 64 * sim::kKiB;
  cfg.record_flow_stats = true;
  cfg.warmup = sim::Time::milliseconds(quick ? 2 : 5);
  cfg.measure = sim::Time::milliseconds(quick ? 3 : 10);

  const auto t0 = std::chrono::steady_clock::now();
  exp::FabricScenario s(std::move(cfg));
  RunOut o;
  o.r = s.run();
  o.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                  .count();
  o.hosts = hosts;
  o.mode = mode;
  return o;
}

std::string run_json(const RunOut& o) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"mode\": \"%s\", \"hosts\": %d, \"tput_gbps\": %.4f, "
                "\"host_drop_rate_pct\": %.6f, \"fct_p50_us\": %.3f, \"fct_p99_us\": %.3f, "
                "\"hosts_full\": %d, \"hosts_analytic\": %d, \"promotions\": %llu, "
                "\"violations\": %llu}",
                o.mode.c_str(), o.hosts, o.r.net_tput_gbps, o.r.host_drop_rate_pct,
                o.r.fct_p50_us, o.r.fct_p99_us, o.r.hosts_full, o.r.hosts_analytic,
                static_cast<unsigned long long>(o.r.promotions),
                static_cast<unsigned long long>(o.r.invariant_violations));
  return buf;
}

// |a - b| as a fraction of the reference (0 when both are 0).
double rel_err(double a, double ref) {
  if (ref == 0.0) return a == 0.0 ? 0.0 : 1.0;
  return a > ref ? (a - ref) / ref : (ref - a) / ref;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  std::vector<RunOut> outs;
  outs.push_back(run_one("full", 64, exp::HostFidelity::kFull, quick));
  outs.push_back(run_one("auto", 64, exp::HostFidelity::kAuto, quick));
  for (const int hosts : {160, 320, 640}) {
    outs.push_back(run_one("auto", hosts, exp::HostFidelity::kAuto, quick));
  }

  exp::Table t({"mode", "hosts", "full/analytic", "tput_gbps", "drop_pct", "fct_p50_us",
                "fct_p99_us", "wall_ms", "inv"});
  for (const RunOut& o : outs) {
    t.add_row({o.mode, std::to_string(o.hosts),
               std::to_string(o.r.hosts_full) + "/" + std::to_string(o.r.hosts_analytic),
               exp::fmt(o.r.net_tput_gbps), exp::fmt_rate(o.r.host_drop_rate_pct),
               exp::fmt(o.r.fct_p50_us, 1), exp::fmt(o.r.fct_p99_us, 1),
               exp::fmt(o.wall_ms, 1), std::to_string(o.r.invariant_violations)});
  }
  if (json) {
    std::printf("{\n  \"runs\": [");
    for (std::size_t i = 0; i < outs.size(); ++i) {
      std::printf("%s\n    %s", i ? "," : "", run_json(outs[i]).c_str());
    }
    std::printf("\n  ]\n}\n");
  } else {
    t.print();
    std::printf("\n(Senders run flow-level; only the incast victim pays packet-level\n"
                " prices. The victim's pipeline is the identical HostModel in every\n"
                " row, so its FCT tail and drop accounting stay comparable while the\n"
                " host count scales an order of magnitude on the same core.)\n");
  }

  // Acceptance: (1) clean ledgers everywhere; (2) auto tracks full within
  // 10% on the victim's P99 FCT and drop rate at 64 hosts; (3) 640 hosts
  // under auto cost no more wall clock than 64 all-full.
  int rc = 0;
  const RunOut& full64 = outs[0];
  const RunOut& auto64 = outs[1];
  const RunOut& auto640 = outs.back();
  for (const RunOut& o : outs) {
    if (o.r.invariant_violations > 0) {
      std::fprintf(stderr, "FAIL: %s/%d: %llu invariant violation(s)\n", o.mode.c_str(),
                   o.hosts, static_cast<unsigned long long>(o.r.invariant_violations));
      rc = 1;
    }
  }
  if (rel_err(auto64.r.fct_p99_us, full64.r.fct_p99_us) > 0.10) {
    std::fprintf(stderr, "FAIL: auto/64 P99 FCT %.1f us vs full/64 %.1f us (> 10%%)\n",
                 auto64.r.fct_p99_us, full64.r.fct_p99_us);
    rc = 1;
  }
  if (rel_err(auto64.r.host_drop_rate_pct, full64.r.host_drop_rate_pct) > 0.10 &&
      auto64.r.host_drop_rate_pct + full64.r.host_drop_rate_pct > 0.01) {
    std::fprintf(stderr, "FAIL: auto/64 drop %.4f%% vs full/64 %.4f%% (> 10%%)\n",
                 auto64.r.host_drop_rate_pct, full64.r.host_drop_rate_pct);
    rc = 1;
  }
  if (auto640.wall_ms > full64.wall_ms) {
    std::fprintf(stderr, "FAIL: auto/640 wall %.1f ms exceeds full/64 wall %.1f ms\n",
                 auto640.wall_ms, full64.wall_ms);
    rc = 1;
  }
  return rc;
}
