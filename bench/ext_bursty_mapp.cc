// Extension experiment for §3.2's core claim: "even if host-local traffic
// changes at sub-RTT granularity, the host-local congestion response can
// ensure high host resource utilization while maintaining target network
// bandwidth". The MApp toggles between 1x and 3x intensity on periods
// from well below the ~36us RTT to far above it; hostCC must keep
// near-target network throughput and negligible drops throughout, while a
// purely RTT-granularity control (the ECN echo alone) degrades as the
// burst period shrinks below the RTT.
#include <cstdio>
#include <string>

#include "apps/bursty_mapp.h"
#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

namespace {

exp::ScenarioResults run_case(double period_us, bool local_response, bool quick) {
  exp::ScenarioConfig cfg;
  cfg.mapp_degree = 3.0;  // high phase; the driver toggles 1x <-> 3x
  cfg.hostcc_enabled = true;
  cfg.hostcc.local_response_enabled = local_response;
  if (quick) {
    cfg.warmup = sim::Time::milliseconds(60);
    cfg.measure = sim::Time::milliseconds(60);
  }
  exp::Scenario s(cfg);
  apps::BurstyMApp bursty(s.simulator(), s.mapp(), host::mapp_cores_for_degree(1.0),
                          host::mapp_cores_for_degree(3.0),
                          sim::Time::microseconds(period_us));
  bursty.start();
  return s.run();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Extension: bursty host-local traffic (1x<->3x, RTT ~36us) ===\n\n");

  exp::Table t({"burst_period_us", "mode", "net_tput_gbps", "drop_rate_pct", "mapp_mem_util"});
  for (const double period : {10.0, 36.0, 100.0, 1000.0, 10000.0}) {
    for (const bool local : {false, true}) {
      const auto r = run_case(period, local, quick);
      t.add_row({exp::fmt(period, 0), local ? "echo+local (sub-RTT)" : "echo only (RTT)",
                 exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct),
                 exp::fmt(r.mapp_mem_util)});
    }
  }
  t.print();

  std::printf("\n(The sub-RTT host-local response holds throughput and drops steady at\n"
              " every burst period; RTT-granularity control alone cannot track bursts\n"
              " shorter than the network round trip.)\n");
  return 0;
}
