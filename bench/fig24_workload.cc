// Figure 24 (repo extension): production workload engine under load. An
// open-loop Poisson churn of websearch-sized flows sweeps the offered load
// from 0.2x to 0.9x of the host bisection bandwidth, with hostCC off and
// on, and reports the flow-slowdown curve (P50/P99), the P99.9 FCT tail,
// and the per-size-bucket breakdown — the standard datacenter-transport
// evaluation cut (slowdown vs flow size as load approaches saturation).
//
// Every run audits conservation invariants; a violation fails the binary,
// as do empty measurement windows or a tail that fails to grow with load.
//
//   --quick     shorter windows (CI smoke)
//   --json      machine-readable rows incl. the by-size buckets (no
//               wall-clock fields)
//   --shards N  sharded execution (byte-identical results)
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "exp/cli.h"
#include "exp/fabric_scenario.h"
#include "exp/table.h"
#include "obs/flow_stats.h"

using namespace hostcc;

namespace {

struct RunOut {
  exp::FabricScenarioResults r;
  double load = 0.0;
  bool hostcc = false;
  std::int64_t slowdown_p50 = 0;  // milli-units, 1000 == ideal
  std::int64_t slowdown_p99 = 0;
  std::string flow_json;  // FlowStats summary incl. by-size buckets
};

RunOut run_one(double load, bool hostcc, bool quick, int shards) {
  exp::FabricScenarioConfig cfg;
  cfg.topology = "leaf-spine:2x4";
  cfg.shards = shards;
  cfg.hostcc_enabled = hostcc;
  cfg.warmup = sim::Time::milliseconds(quick ? 1 : 3);
  cfg.measure = sim::Time::milliseconds(quick ? 5 : 20);
  cfg.workload.enabled = true;
  cfg.workload.load = load;
  cfg.workload.size_dist = "websearch";
  cfg.workload.slots_per_pair = 8;
  cfg.workload.reuse_cooldown = sim::Time::microseconds(200);

  exp::FabricScenario s(std::move(cfg));
  RunOut o;
  o.r = s.run();
  o.load = load;
  o.hostcc = hostcc;
  o.slowdown_p50 = s.flow_stats().slowdown_milli().percentile(0.50);
  o.slowdown_p99 = s.flow_stats().slowdown_milli().percentile(0.99);
  std::ostringstream fs;
  s.flow_stats().write_json_summary(fs);
  o.flow_json = fs.str();
  return o;
}

std::string run_json(const RunOut& o) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"load\": %.2f, \"hostcc\": %s, \"tput_gbps\": %.4f, "
                "\"flows_started\": %llu, \"flows_completed\": %llu, "
                "\"flows_skipped\": %llu, \"fct_p50_us\": %.3f, \"fct_p99_us\": %.3f, "
                "\"fct_p999_us\": %.3f, \"slowdown_p50\": %lld, \"slowdown_p99\": %lld, "
                "\"violations\": %llu, \"flow_stats\": ",
                o.load, o.hostcc ? "true" : "false", o.r.net_tput_gbps,
                static_cast<unsigned long long>(o.r.flows_started),
                static_cast<unsigned long long>(o.r.flows_completed),
                static_cast<unsigned long long>(o.r.flows_skipped), o.r.fct_p50_us,
                o.r.fct_p99_us, o.r.fct_p999_us, static_cast<long long>(o.slowdown_p50),
                static_cast<long long>(o.slowdown_p99),
                static_cast<unsigned long long>(o.r.invariant_violations));
  return std::string(buf) + o.flow_json + "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const exp::BenchOpts opts = exp::parse_bench_opts_or_die(argc, argv, {"--json"});

  const std::vector<double> loads = opts.quick ? std::vector<double>{0.2, 0.6, 0.9}
                                               : std::vector<double>{0.2, 0.4, 0.6, 0.8, 0.9};
  std::vector<RunOut> outs;
  for (const bool cc : {false, true}) {
    for (const double load : loads) {
      outs.push_back(run_one(load, cc, opts.quick, opts.shards));
    }
  }

  exp::Table t({"hostcc", "load", "tput_gbps", "done/skip", "fct_p50_us", "fct_p99_us",
                "fct_p999_us", "slow_p50", "slow_p99", "inv"});
  for (const RunOut& o : outs) {
    t.add_row({o.hostcc ? "on" : "off", exp::fmt(o.load, 2), exp::fmt(o.r.net_tput_gbps),
               std::to_string(o.r.flows_completed) + "/" + std::to_string(o.r.flows_skipped),
               exp::fmt(o.r.fct_p50_us, 1), exp::fmt(o.r.fct_p99_us, 1),
               exp::fmt(o.r.fct_p999_us, 1), exp::fmt(o.slowdown_p50 / 1000.0, 2),
               exp::fmt(o.slowdown_p99 / 1000.0, 2),
               std::to_string(o.r.invariant_violations)});
  }
  if (json) {
    std::printf("{\n  \"runs\": [");
    for (std::size_t i = 0; i < outs.size(); ++i) {
      std::printf("%s\n    %s", i ? "," : "", run_json(outs[i]).c_str());
    }
    std::printf("\n  ]\n}\n");
  } else {
    std::printf("=== Figure 24: workload churn, slowdown vs load "
                "(websearch, leaf-spine:2x4) ===\n\n");
    t.print();
    std::printf("\n(Slowdown is FCT over the ideal transfer at the reference line\n"
                " rate; 1.00 == ideal. The open-loop engine never blocks: arrivals\n"
                " finding every (src,dst) slot busy are counted as skipped.)\n");
  }

  // Acceptance: clean ledgers, a real measurement window at every point,
  // and a P99 tail that grows from the lightest to the heaviest load.
  int rc = 0;
  for (const RunOut& o : outs) {
    if (o.r.invariant_violations > 0) {
      std::fprintf(stderr, "FAIL: hostcc=%d load=%.2f: %llu invariant violation(s)\n",
                   o.hostcc, o.load,
                   static_cast<unsigned long long>(o.r.invariant_violations));
      rc = 1;
    }
    if (o.r.flows_completed == 0 || o.r.fct_p999_us <= 0.0) {
      std::fprintf(stderr, "FAIL: hostcc=%d load=%.2f: empty measurement window\n",
                   o.hostcc, o.load);
      rc = 1;
    }
  }
  const std::size_t n = loads.size();
  for (const std::size_t base : {std::size_t{0}, n}) {  // off rows, then on rows
    const RunOut& lo = outs[base];
    const RunOut& hi = outs[base + n - 1];
    if (hi.r.fct_p99_us < lo.r.fct_p99_us) {
      std::fprintf(stderr,
                   "FAIL: hostcc=%d: P99 FCT at load %.2f (%.1f us) below load %.2f "
                   "(%.1f us)\n",
                   hi.hostcc, hi.load, hi.r.fct_p99_us, lo.load, lo.r.fct_p99_us);
      rc = 1;
    }
  }
  return rc;
}
