// Ablation (DESIGN.md §5.3): how the MBA MSR write latency limits the
// host-local response. §6 of the paper identifies the measured ~22us MBA
// actuation latency as a key hardware limitation precluding finer-grained
// response; this sweep quantifies what faster (hypothetical) actuation
// hardware would buy, and what slower actuation would cost.
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Ablation: MBA actuation latency (3x congestion, hostCC on) ===\n\n");

  exp::Table t({"msr_write_us", "net_tput_gbps", "drop_rate_pct", "mapp_mem_util",
                "level_changes_per_ms"});
  for (const double us : {1.0, 5.0, 22.0, 50.0, 100.0}) {
    exp::ScenarioConfig cfg;
    cfg.mapp_degree = 3.0;
    cfg.hostcc_enabled = true;
    cfg.host.mba_msr_write_latency = sim::Time::microseconds(us);
    if (quick) {
      cfg.warmup = sim::Time::milliseconds(60);
      cfg.measure = sim::Time::milliseconds(60);
    }
    exp::Scenario s(cfg);
    const auto r = s.run();
    const double changes_per_ms =
        static_cast<double>(s.receiver().mba().msr_writes_issued()) / s.simulator().now().ms();
    t.add_row({exp::fmt(us, 0), exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct),
               exp::fmt(r.mapp_mem_util), exp::fmt(changes_per_ms, 1)});
  }
  t.print();

  std::printf("\n(The paper's hardware point is 22us; faster actuation allows finer\n"
              " response and better MApp utilization at equal network throughput.)\n");
  return 0;
}
