// Figure 3 reproduction: impact of host congestion vs. MTU size
// {1500, 4000, 9000} and number of active flows {4, 8, 16}, at 3x host
// congestion, DDIO on/off.
// Paper: drop rates grow with MTU and flow count; DDIO-enabled suffers
// more than disabled at large MTU / many flows (higher eviction rates),
// while DDIO-off gains a little throughput from cheaper per-packet CPU.
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

namespace {

exp::ScenarioConfig base_config(bool ddio, bool quick) {
  exp::ScenarioConfig cfg;
  cfg.host.ddio_enabled = ddio;
  cfg.mapp_degree = 3.0;
  if (quick) {
    cfg.warmup = sim::Time::milliseconds(60);
    cfg.measure = sim::Time::milliseconds(60);
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Figure 3: MTU size and flow count under 3x host congestion ===\n\n");

  std::printf("-- (left) MTU sweep, 4 flows --\n");
  exp::Table tm({"mtu", "ddio", "net_tput_gbps", "drop_rate_pct"});
  for (const bool ddio : {false, true}) {
    for (const sim::Bytes mtu : {1500, 4000, 9000}) {
      exp::ScenarioConfig cfg = base_config(ddio, quick);
      cfg.transport.mtu = mtu;
      exp::Scenario s(cfg);
      const auto r = s.run();
      tm.add_row({std::to_string(mtu) + "B", ddio ? "on" : "off", exp::fmt(r.net_tput_gbps),
                  exp::fmt_rate(r.host_drop_rate_pct)});
    }
  }
  tm.print();

  std::printf("\n-- (right) flow-count sweep, 4000B MTU --\n");
  exp::Table tf({"flows", "ddio", "net_tput_gbps", "drop_rate_pct"});
  for (const bool ddio : {false, true}) {
    for (const int flows : {4, 8, 16}) {
      exp::ScenarioConfig cfg = base_config(ddio, quick);
      cfg.netapp_flows = flows;
      exp::Scenario s(cfg);
      const auto r = s.run();
      tf.add_row({std::to_string(flows), ddio ? "on" : "off", exp::fmt(r.net_tput_gbps),
                  exp::fmt_rate(r.host_drop_rate_pct)});
    }
  }
  tf.print();

  std::printf("\n(Paper: drop rate grows with MTU and flow count; DDIO-on overtakes\n"
              " DDIO-off in drops at 9000B / 16 flows.)\n");
  return 0;
}
