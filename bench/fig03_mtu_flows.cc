// Figure 3 reproduction: impact of host congestion vs. MTU size
// {1500, 4000, 9000} and number of active flows {4, 8, 16}, at 3x host
// congestion, DDIO on/off.
// Paper: drop rates grow with MTU and flow count; DDIO-enabled suffers
// more than disabled at large MTU / many flows (higher eviction rates),
// while DDIO-off gains a little throughput from cheaper per-packet CPU.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "exp/cli.h"
#include "exp/scenario.h"
#include "exp/table.h"
#include "sim/sweep_runner.h"

using namespace hostcc;

namespace {

exp::ScenarioConfig base_config(bool ddio, bool quick) {
  exp::ScenarioConfig cfg;
  cfg.host.ddio_enabled = ddio;
  cfg.mapp_degree = 3.0;
  if (quick) {
    cfg.warmup = sim::Time::milliseconds(60);
    cfg.measure = sim::Time::milliseconds(60);
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchOpts opts = exp::parse_bench_opts_or_die(argc, argv);
  const sim::SweepRunner runner(opts.jobs);

  std::printf("=== Figure 3: MTU size and flow count under 3x host congestion ===\n\n");

  // Both panels' configurations run as one parallel sweep.
  struct Point {
    bool mtu_panel;
    bool ddio;
    sim::Bytes mtu = 4000;
    int flows = 4;
  };
  std::vector<Point> points;
  for (const bool ddio : {false, true}) {
    for (const sim::Bytes mtu : {1500, 4000, 9000}) {
      points.push_back({.mtu_panel = true, .ddio = ddio, .mtu = mtu});
    }
  }
  for (const bool ddio : {false, true}) {
    for (const int flows : {4, 8, 16}) {
      points.push_back({.mtu_panel = false, .ddio = ddio, .flows = flows});
    }
  }

  std::vector<std::function<exp::ScenarioResults()>> tasks;
  for (const Point& pt : points) {
    tasks.emplace_back([pt, quick = opts.quick] {
      exp::ScenarioConfig cfg = base_config(pt.ddio, quick);
      if (pt.mtu_panel) {
        cfg.transport.mtu = pt.mtu;
      } else {
        cfg.netapp_flows = pt.flows;
      }
      exp::Scenario s(cfg);
      return s.run();
    });
  }
  const auto results = runner.run(std::move(tasks));

  exp::Table tm({"mtu", "ddio", "net_tput_gbps", "drop_rate_pct"});
  exp::Table tf({"flows", "ddio", "net_tput_gbps", "drop_rate_pct"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    const auto& r = results[i];
    if (pt.mtu_panel) {
      tm.add_row({std::to_string(pt.mtu) + "B", pt.ddio ? "on" : "off",
                  exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct)});
    } else {
      tf.add_row({std::to_string(pt.flows), pt.ddio ? "on" : "off", exp::fmt(r.net_tput_gbps),
                  exp::fmt_rate(r.host_drop_rate_pct)});
    }
  }
  std::printf("-- (left) MTU sweep, 4 flows --\n");
  tm.print();
  std::printf("\n-- (right) flow-count sweep, 4000B MTU --\n");
  tf.print();

  std::printf("\n(Paper: drop rate grows with MTU and flow count; DDIO-on overtakes\n"
              " DDIO-off in drops at 9000B / 16 flows.)\n");
  return 0;
}
