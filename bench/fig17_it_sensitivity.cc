// Figure 17 reproduction: hostCC sensitivity to the IIO occupancy
// threshold I_T (70..90) at 3x host congestion, DDIO off.
// Paper: larger I_T reacts later to congestion onset — drop rates grow
// with I_T, and MApp keeps a larger memory share (less backpressure).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "exp/cli.h"
#include "exp/scenario.h"
#include "exp/table.h"
#include "sim/sweep_runner.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const exp::BenchOpts opts = exp::parse_bench_opts_or_die(argc, argv);

  std::printf("=== Figure 17: sensitivity to IIO threshold I_T (3x, B_T=80Gbps) ===\n\n");

  std::vector<int> its;
  for (int it = 70; it <= 90; it += 5) its.push_back(it);

  std::vector<std::function<exp::ScenarioResults()>> tasks;
  for (const int it : its) {
    tasks.emplace_back([it, quick = opts.quick] {
      exp::ScenarioConfig cfg;
      cfg.mapp_degree = 3.0;
      cfg.hostcc_enabled = true;
      cfg.hostcc.iio_threshold = it;
      cfg.record_signals = true;
      if (quick) {
        cfg.warmup = sim::Time::milliseconds(60);
        cfg.measure = sim::Time::milliseconds(60);
      }
      exp::Scenario s(cfg);
      return s.run();
    });
  }
  const auto results = sim::SweepRunner(opts.jobs).run(std::move(tasks));

  exp::Table t({"I_T", "net_tput_gbps", "drop_rate_pct", "netapp_mem_util", "mapp_mem_util",
                "avg_IS", "avg_BS_gbps"});
  for (std::size_t i = 0; i < its.size(); ++i) {
    const auto& r = results[i];
    t.add_row({std::to_string(its[i]), exp::fmt(r.net_tput_gbps),
               exp::fmt_rate(r.host_drop_rate_pct), exp::fmt(r.net_mem_util),
               exp::fmt(r.mapp_mem_util), exp::fmt(r.avg_iio_occupancy, 1),
               exp::fmt(r.avg_pcie_gbps, 1)});
  }
  t.print();

  std::printf("\n(Paper: drops grow with I_T; MApp acquires more bandwidth with larger I_T.)\n");
  return 0;
}
