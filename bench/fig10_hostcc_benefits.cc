// Figure 10 reproduction: DCTCP with and without hostCC across degrees of
// host congestion (DDIO disabled). Paper: hostCC holds NetApp-T at the
// target bandwidth B_T = 80Gbps even at 3x, cuts packet drops by orders of
// magnitude, and stops MApp from monopolizing memory bandwidth — without
// starving it when the network meets its target.
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Figure 10: hostCC benefits (DDIO off, B_T=80Gbps, I_T=70) ===\n\n");

  exp::Table t({"degree", "mode", "net_tput_gbps", "drop_rate_pct", "netapp_mem_util",
                "mapp_mem_util", "avg_IS", "avg_BS_gbps", "host_marks"});
  for (const double degree : {0.0, 1.0, 2.0, 3.0}) {
    for (const bool hostcc : {false, true}) {
      exp::ScenarioConfig cfg;
      cfg.mapp_degree = degree;
      cfg.hostcc_enabled = hostcc;
      cfg.record_signals = true;
      if (quick) {
        cfg.warmup = sim::Time::milliseconds(60);
        cfg.measure = sim::Time::milliseconds(60);
      }
      exp::Scenario s(cfg);
      const auto r = s.run();
      t.add_row({exp::fmt(degree, 0) + "x", hostcc ? "dctcp+hostcc" : "dctcp",
                 exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct),
                 exp::fmt(r.net_mem_util), exp::fmt(r.mapp_mem_util),
                 exp::fmt(r.avg_iio_occupancy, 1), exp::fmt(r.avg_pcie_gbps, 1),
                 std::to_string(r.ecn_marked_pkts)});
    }
  }
  t.print();

  std::printf("\n(Paper: hostCC keeps NetApp-T at ~80Gbps for every degree >= 1x while\n"
              " reducing drop rates by orders of magnitude; MApp no longer acquires a\n"
              " growing share of memory bandwidth.)\n");
  return 0;
}
