// Figure 8 reproduction: IIO occupancy I_S and PCIe bandwidth B_S over a
// 1ms window, without host congestion (left) and at 3x (right), no hostCC.
// Paper: idle — B_S ~103Gbps (line rate incl. PCIe overheads at 4K MTU)
// and I_S ~65 (IIO-DRAM bandwidth-delay product); at 3x — I_S climbs to
// its ~93-line maximum (the PCIe credit limit) and B_S collapses.
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  std::printf("=== Figure 8: I_S and B_S over 1ms, without/with 3x host congestion ===\n\n");

  for (const double degree : {0.0, 3.0}) {
    exp::ScenarioConfig cfg;
    cfg.mapp_degree = degree;
    cfg.record_signals = true;
    cfg.warmup = sim::Time::milliseconds(degree > 0 ? 250 : 40);
    exp::Scenario s(cfg);
    s.run_warmup();
    const sim::Time t0 = s.simulator().now();
    s.run_for(sim::Time::milliseconds(1));
    const sim::Time t1 = s.simulator().now();

    std::printf("-- %s host congestion --\n", degree == 0.0 ? "no" : "3x");
    if (csv) {
      const auto& bsv = s.bs_series().samples();
      const auto& isv = s.is_series().samples();
      std::printf("time_us,pcie_gbps,iio_occ\n");
      for (std::size_t i = 0; i < bsv.size(); ++i) {
        if (bsv[i].t < t0) continue;
        std::printf("%.2f,%.2f,%.1f\n", (bsv[i].t - t0).us(), bsv[i].value, isv[i].value);
      }
      continue;
    }
    exp::Table t({"t_us", "pcie_bw_gbps", "iio_occupancy"});
    for (int bin = 0; bin < 10; ++bin) {
      const sim::Time a = t0 + sim::Time::microseconds(100.0 * bin);
      const sim::Time b = a + sim::Time::microseconds(100);
      t.add_row({exp::fmt(100.0 * bin, 0), exp::fmt(s.bs_series().mean_over(a, b), 1),
                 exp::fmt(s.is_series().mean_over(a, b), 1)});
    }
    t.print();
    std::printf("window: mean B_S %.1f Gbps, mean I_S %.1f, max I_S %.1f\n\n",
                s.bs_series().mean_over(t0, t1), s.is_series().mean_over(t0, t1),
                s.is_series().max_over(t0, t1));
  }

  std::printf("(Paper: idle B_S~103/I_S~65; at 3x I_S saturates near 93 and B_S drops,\n"
              " with sawtooth excursions from the network CC reacting to drops.)\n");
  return 0;
}
