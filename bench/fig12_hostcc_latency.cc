// Figure 12 reproduction: NetApp-L latency percentiles at 3x host
// congestion with DCTCP vs DCTCP+hostCC (DDIO off), all apps together.
// Paper: hostCC restores near-uncongested tails — ~13us P99 inflation for
// 128B RPCs and no timeouts even at P99.9.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::vector<sim::Bytes> sizes = {128, 512, 2048, 8192, 32768};

  std::printf("=== Figure 12: hostCC tail-latency benefits (3x, DDIO off) ===\n\n");

  struct Mode {
    const char* name;
    double degree;
    bool hostcc;
  };
  const Mode modes[] = {{"dctcp (no congestion)", 0.0, false},
                        {"dctcp (3x congestion)", 3.0, false},
                        {"dctcp+hostcc (3x congestion)", 3.0, true}};

  for (const Mode& m : modes) {
    std::printf("-- %s --\n", m.name);
    exp::ScenarioConfig cfg;
    cfg.mapp_degree = m.degree;
    cfg.hostcc_enabled = m.hostcc;
    cfg.rpc_sizes = sizes;
    cfg.warmup = sim::Time::milliseconds(quick ? 150 : 300);
    cfg.measure = sim::Time::milliseconds(quick ? 800 : 3000);
    exp::Scenario s(cfg);
    const auto r = s.run();
    exp::Table t({"rpc_size", "count", "p50_us", "p90_us", "p99_us", "p99.9_us", "p99.99_us"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& l = r.rpc_latency[i];
      t.add_row({std::to_string(sizes[i]) + "B", std::to_string(l.count),
                 exp::fmt(l.p50.us(), 1), exp::fmt(l.p90.us(), 1), exp::fmt(l.p99.us(), 1),
                 exp::fmt(l.p999.us(), 1), exp::fmt(l.p9999.us(), 1)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("(Paper: hostCC's P99 inflation vs. no-congestion is ~13us for 128B RPCs\n"
              " and there are no 200ms timeout tails at P99.9.)\n");
  return 0;
}
