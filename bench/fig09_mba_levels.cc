// Figure 9 reproduction: efficacy of the MBA actuator. Each host-local
// response level is hard-coded (no hostCC control loop) under 3x host
// congestion; more backpressure on MApp frees host resources for NetApp-T.
// Paper: NetApp-T throughput rises ~43 -> ~77 (level 3) -> ~100Gbps
// (level 4 = pause), MApp throughput falls correspondingly; DDIO-enabled
// reaches line rate already at level 3.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/mem_app.h"
#include "exp/cli.h"
#include "exp/scenario.h"
#include "exp/table.h"
#include "sim/sweep_runner.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const exp::BenchOpts opts = exp::parse_bench_opts_or_die(argc, argv);

  std::printf("=== Figure 9: hard-coded host-local response levels (MBA) ===\n");
  std::printf("Setup: NetApp-T + MApp 3x; MBA level fixed per run.\n\n");

  struct Point {
    bool ddio;
    int level;
  };
  std::vector<Point> points;
  for (const bool ddio : {false, true}) {
    for (int level = 0; level <= 4; ++level) points.push_back({ddio, level});
  }

  // The MApp app-level throughput derives from the run's memory bandwidth
  // and the (per-point) host config, so compute it inside the task.
  struct Row {
    exp::ScenarioResults r;
    double mapp_app_gbps = 0.0;
  };
  std::vector<std::function<Row()>> tasks;
  for (const Point& pt : points) {
    tasks.emplace_back([pt, quick = opts.quick] {
      exp::ScenarioConfig cfg;
      cfg.host.ddio_enabled = pt.ddio;
      cfg.mapp_degree = 3.0;
      cfg.fixed_mba_level = pt.level;
      if (quick) {
        cfg.warmup = sim::Time::milliseconds(60);
        cfg.measure = sim::Time::milliseconds(60);
      }
      exp::Scenario s(cfg);
      Row row;
      row.r = s.run();
      row.mapp_app_gbps =
          apps::MemApp::app_throughput_gbps(sim::Bandwidth::gbps(row.r.mapp_mem_gbps), cfg.host);
      return row;
    });
  }
  const auto rows = sim::SweepRunner(opts.jobs).run(std::move(tasks));

  for (const bool ddio : {false, true}) {
    exp::Table t({"level", "ddio", "netapp_tput_gbps", "mapp_tput_gbps", "netapp_mem_util",
                  "mapp_mem_util", "total_mem_util"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].ddio != ddio) continue;
      const auto& [r, mapp_app] = rows[i];
      t.add_row({std::to_string(points[i].level), ddio ? "on" : "off", exp::fmt(r.net_tput_gbps),
                 exp::fmt(mapp_app), exp::fmt(r.net_mem_util), exp::fmt(r.mapp_mem_util),
                 exp::fmt(r.mem_util)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("(Paper, DDIO off: NetApp-T ~43/.../77 Gbps at levels 0..3, ~100 at level 4;\n"
              " DDIO on reaches line rate already at level 3.)\n");
  return 0;
}
