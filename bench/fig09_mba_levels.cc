// Figure 9 reproduction: efficacy of the MBA actuator. Each host-local
// response level is hard-coded (no hostCC control loop) under 3x host
// congestion; more backpressure on MApp frees host resources for NetApp-T.
// Paper: NetApp-T throughput rises ~43 -> ~77 (level 3) -> ~100Gbps
// (level 4 = pause), MApp throughput falls correspondingly; DDIO-enabled
// reaches line rate already at level 3.
#include <cstdio>
#include <string>

#include "apps/mem_app.h"
#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Figure 9: hard-coded host-local response levels (MBA) ===\n");
  std::printf("Setup: NetApp-T + MApp 3x; MBA level fixed per run.\n\n");

  for (const bool ddio : {false, true}) {
    exp::Table t({"level", "ddio", "netapp_tput_gbps", "mapp_tput_gbps", "netapp_mem_util",
                  "mapp_mem_util", "total_mem_util"});
    for (int level = 0; level <= 4; ++level) {
      exp::ScenarioConfig cfg;
      cfg.host.ddio_enabled = ddio;
      cfg.mapp_degree = 3.0;
      cfg.fixed_mba_level = level;
      if (quick) {
        cfg.warmup = sim::Time::milliseconds(60);
        cfg.measure = sim::Time::milliseconds(60);
      }
      exp::Scenario s(cfg);
      const auto r = s.run();
      const double mapp_app =
          apps::MemApp::app_throughput_gbps(sim::Bandwidth::gbps(r.mapp_mem_gbps), cfg.host);
      t.add_row({std::to_string(level), ddio ? "on" : "off", exp::fmt(r.net_tput_gbps),
                 exp::fmt(mapp_app), exp::fmt(r.net_mem_util), exp::fmt(r.mapp_mem_util),
                 exp::fmt(r.mem_util)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("(Paper, DDIO off: NetApp-T ~43/.../77 Gbps at levels 0..3, ~100 at level 4;\n"
              " DDIO on reaches line rate already at level 3.)\n");
  return 0;
}
