// Extension experiment (§6 "Host congestion signals"): hostCC with other
// congestion-control protocols. DCTCP (ECN-based), Reno (loss-only), and
// a Swift-style delay-based protocol run under 3x host congestion with
// and without hostCC.
//
// Expectations from the paper's discussion:
//  - Reno sees host congestion only through drops: highest drop rates.
//  - Swift's end-to-end delay signal includes NIC queueing, so it backs
//    off before the buffer overflows — fewer drops than Reno even without
//    hostCC (delay already encodes part of the host signal).
//  - hostCC's host-local response benefits all three; the ECN echo
//    accelerates only ECN-capable DCTCP.
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Extension: hostCC with ECN-, loss-, and delay-based CC (3x) ===\n\n");

  exp::Table t({"cc", "mode", "net_tput_gbps", "drop_rate_pct", "avg_IS", "mapp_mem_util"});
  for (const auto kind :
       {transport::CcKind::kDctcp, transport::CcKind::kReno, transport::CcKind::kSwift}) {
    for (const bool hostcc : {false, true}) {
      exp::ScenarioConfig cfg;
      cfg.mapp_degree = 3.0;
      cfg.transport.cc = kind;
      cfg.hostcc_enabled = hostcc;
      cfg.record_signals = true;
      if (quick) {
        cfg.warmup = sim::Time::milliseconds(60);
        cfg.measure = sim::Time::milliseconds(60);
      }
      exp::Scenario s(cfg);
      const auto r = s.run();
      t.add_row({transport::cc_kind_name(kind), hostcc ? "+hostcc" : "plain",
                 exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct),
                 exp::fmt(r.avg_iio_occupancy, 1), exp::fmt(r.mapp_mem_util)});
    }
  }
  t.print();

  std::printf("\n(hostCC requires no protocol modifications; delay-based protocols see\n"
              " host queueing through RTT already, loss-based ones only through drops.)\n");
  return 0;
}
