// Figure 7 reproduction: CDF of the I_S and B_S measurement latency, with
// and without host congestion. The reads are off the NIC-to-memory
// datapath, so the distributions are indistinguishable — the property §3.1
// claims for MSR-based signal collection.
#include <cstdio>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main() {
  std::printf("=== Figure 7: host-signal measurement latency CDF ===\n\n");

  exp::Table t({"percentile", "IS_idle_us", "IS_3x_us", "BS_idle_us", "BS_3x_us"});
  const double qs[] = {0.10, 0.25, 0.50, 0.75, 0.90, 0.99};

  sim::Histogram is[2], bs[2];
  int idx = 0;
  for (const double degree : {0.0, 3.0}) {
    exp::ScenarioConfig cfg;
    cfg.mapp_degree = degree;
    cfg.hostcc_enabled = true;
    cfg.warmup = sim::Time::milliseconds(40);
    cfg.measure = sim::Time::milliseconds(40);
    exp::Scenario s(cfg);
    s.run();
    is[idx].merge(s.signals().is_read_latency());
    bs[idx].merge(s.signals().bs_read_latency());
    ++idx;
  }

  for (const double q : qs) {
    t.add_row({"P" + exp::fmt(q * 100, 0), exp::fmt(is[0].percentile_time(q).us(), 3),
               exp::fmt(is[1].percentile_time(q).us(), 3),
               exp::fmt(bs[0].percentile_time(q).us(), 3),
               exp::fmt(bs[1].percentile_time(q).us(), 3)});
  }
  t.print();

  std::printf("\n(Paper: both signals measured in ~0.4-1.2us, independent of host\n"
              " congestion — the reads never touch the congested datapath.)\n");
  return 0;
}
