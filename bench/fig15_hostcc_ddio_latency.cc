// Figure 15 reproduction: Figure 12 (RPC tail latency with hostCC) with
// DDIO enabled. Paper: identical benefits to the DDIO-off case, since
// drop rates at 3x are similar with DDIO on/off.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::vector<sim::Bytes> sizes = {128, 512, 2048, 8192, 32768};

  std::printf("=== Figure 15: hostCC tail-latency benefits, DDIO enabled (I_T=50) ===\n\n");

  struct Mode {
    const char* name;
    double degree;
    bool hostcc;
  };
  const Mode modes[] = {{"dctcp (no congestion)", 0.0, false},
                        {"dctcp (3x congestion)", 3.0, false},
                        {"dctcp+hostcc (3x congestion)", 3.0, true}};

  for (const Mode& m : modes) {
    std::printf("-- %s --\n", m.name);
    exp::ScenarioConfig cfg;
    cfg.host.ddio_enabled = true;
    cfg.mapp_degree = m.degree;
    cfg.hostcc_enabled = m.hostcc;
    cfg.hostcc.iio_threshold = 50.0;
    cfg.rpc_sizes = sizes;
    cfg.warmup = sim::Time::milliseconds(quick ? 150 : 300);
    cfg.measure = sim::Time::milliseconds(quick ? 800 : 3000);
    exp::Scenario s(cfg);
    const auto r = s.run();
    exp::Table t({"rpc_size", "count", "p50_us", "p90_us", "p99_us", "p99.9_us", "p99.99_us"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& l = r.rpc_latency[i];
      t.add_row({std::to_string(sizes[i]) + "B", std::to_string(l.count),
                 exp::fmt(l.p50.us(), 1), exp::fmt(l.p90.us(), 1), exp::fmt(l.p99.us(), 1),
                 exp::fmt(l.p999.us(), 1), exp::fmt(l.p9999.us(), 1)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("(Paper: latency distributions identical to the DDIO-off Fig. 12.)\n");
  return 0;
}
