// Figure 13 reproduction: hostCC under network fabric congestion (incast,
// two senders -> one receiver) — (a) network congestion only, (b) host +
// network congestion — with the degree of incast (total concurrent flows)
// varied from 4 to 10 (1x..2.5x).
// Paper: without host congestion, hostCC == plain network CC (minimal
// overhead); with both congestion types, hostCC restores ~B_T throughput
// and cuts drops by orders of magnitude.
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Figure 13: incast (network congestion), +/- host congestion ===\n\n");

  for (const double degree : {0.0, 3.0}) {
    std::printf("-- %s --\n",
                degree == 0.0 ? "(a) network congestion only" : "(b) host + network congestion");
    exp::Table t({"incast", "flows", "mode", "net_tput_gbps", "drop_total_pct", "drop_host_pct",
                  "drop_fabric_pct"});
    for (const int flows : {4, 6, 8, 10}) {
      for (const bool hostcc : {false, true}) {
        exp::ScenarioConfig cfg;
        cfg.senders = 2;
        cfg.netapp_flows = flows;
        cfg.mapp_degree = degree;
        cfg.hostcc_enabled = hostcc;
        if (quick) {
          cfg.warmup = sim::Time::milliseconds(60);
          cfg.measure = sim::Time::milliseconds(60);
        }
        exp::Scenario s(cfg);
        const auto r = s.run();
        t.add_row({exp::fmt(flows / 4.0, 2) + "x", std::to_string(flows),
                   hostcc ? "dctcp+hostcc" : "dctcp", exp::fmt(r.net_tput_gbps),
                   exp::fmt_rate(r.drop_rate_pct), exp::fmt_rate(r.host_drop_rate_pct),
                   exp::fmt_rate(r.fabric_drop_rate_pct)});
      }
    }
    t.print();
    std::printf("\n");
  }

  std::printf("(Paper: (a) hostCC tracks network CC exactly; (b) hostCC keeps ~B_T\n"
              " throughput and low drop rates despite both congestion types.)\n");
  return 0;
}
