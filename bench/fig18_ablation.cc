// Figure 18 reproduction: necessity of hostCC's mechanisms at 3x host
// congestion — ECN echo only, host-local response only, and both in
// tandem — plus (with --timeseries) the I_S/B_S traces of Fig. 18(b-d),
// and (with --ewma-sweep) the signal-smoothing ablation of §4.1.
// Paper: echo-only minimizes drops but throughput collapses (~28Gbps);
// local-only restores throughput but I_S saturates and drops stay high;
// both together give high throughput AND low drops.
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "exp/cli.h"
#include "exp/scenario.h"
#include "exp/table.h"
#include "sim/sweep_runner.h"

using namespace hostcc;

namespace {

exp::ScenarioConfig ablation_config(bool echo, bool local, bool quick) {
  exp::ScenarioConfig cfg;
  cfg.mapp_degree = 3.0;
  cfg.hostcc_enabled = true;
  cfg.hostcc.echo_enabled = echo;
  cfg.hostcc.local_response_enabled = local;
  cfg.record_signals = true;
  if (quick) {
    cfg.warmup = sim::Time::milliseconds(60);
    cfg.measure = sim::Time::milliseconds(60);
  }
  return cfg;
}

void run_main_table(bool quick, const sim::SweepRunner& runner) {
  struct V {
    const char* name;
    bool echo, local;
  };
  const V variants[] = {{"echo only", true, false},
                        {"host-local response only", false, true},
                        {"echo + host-local response", true, true}};
  struct Row {
    exp::ScenarioResults r;
    double max_is = 0.0;
  };
  std::vector<std::function<Row()>> tasks;
  for (const V& v : variants) {
    tasks.emplace_back([v, quick] {
      exp::Scenario s(ablation_config(v.echo, v.local, quick));
      s.run_warmup();
      const sim::Time t0 = s.simulator().now();
      Row row;
      row.r = s.run_measure();
      row.max_is = s.is_series().max_over(t0, s.simulator().now());
      return row;
    });
  }
  const auto rows = runner.run(std::move(tasks));

  exp::Table t({"variant", "net_tput_gbps", "drop_rate_pct", "avg_IS", "max_IS", "avg_BS_gbps"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [r, max_is] = rows[i];
    t.add_row({variants[i].name, exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct),
               exp::fmt(r.avg_iio_occupancy, 1), exp::fmt(max_is, 1),
               exp::fmt(r.avg_pcie_gbps, 1)});
  }
  t.print();
  std::printf("\n(Paper: echo-only ~28Gbps low drops; local-only high tput, I_S pinned\n"
              " at ~93 and high drops; both => high tput and minimal drops.)\n");
}

void run_timeseries(bool quick) {
  struct V {
    const char* name;
    bool echo, local;
  };
  const V variants[] = {{"echo only (Fig. 18b)", true, false},
                        {"local only (Fig. 18c)", false, true},
                        {"both (Fig. 18d)", true, true}};
  for (const V& v : variants) {
    exp::Scenario s(ablation_config(v.echo, v.local, quick));
    s.run_warmup();
    const sim::Time t0 = s.simulator().now();
    s.run_for(sim::Time::milliseconds(1));
    std::printf("-- %s --\n", v.name);
    exp::Table t({"t_us", "pcie_bw_gbps", "iio_occupancy"});
    for (int bin = 0; bin < 10; ++bin) {
      const sim::Time a = t0 + sim::Time::microseconds(100.0 * bin);
      const sim::Time b = a + sim::Time::microseconds(100);
      t.add_row({exp::fmt(100.0 * bin, 0), exp::fmt(s.bs_series().mean_over(a, b), 1),
                 exp::fmt(s.is_series().mean_over(a, b), 1)});
    }
    t.print();
    std::printf("\n");
  }
}

void run_ewma_sweep(bool quick, const sim::SweepRunner& runner) {
  std::printf("-- EWMA-weight ablation (aggressiveness vs. delayed reaction, §4.1) --\n");
  struct W {
    double is, bs;
  };
  const W weights[] = {{1.0 / 2, 1.0 / 8},  {1.0 / 8, 1.0 / 32},
                       {1.0 / 32, 1.0 / 128}, {1.0 / 64, 1.0 / 256}};
  struct Row {
    exp::ScenarioResults r;
    double writes_per_ms = 0.0;
  };
  std::vector<std::function<Row()>> tasks;
  for (const W& w : weights) {
    tasks.emplace_back([w, quick] {
      exp::ScenarioConfig cfg = ablation_config(true, true, quick);
      cfg.hostcc.signals.is_ewma_weight = w.is;
      cfg.hostcc.signals.bs_ewma_weight = w.bs;
      exp::Scenario s(cfg);
      Row row;
      row.r = s.run();
      row.writes_per_ms = static_cast<double>(s.receiver().mba().msr_writes_issued()) /
                          (s.simulator().now().ms());
      return row;
    });
  }
  const auto rows = runner.run(std::move(tasks));

  exp::Table t({"is_weight", "bs_weight", "net_tput_gbps", "drop_rate_pct", "mapp_mem_util",
                "mba_writes_per_ms"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [r, writes_per_ms] = rows[i];
    t.add_row({"1/" + exp::fmt(1.0 / weights[i].is, 0), "1/" + exp::fmt(1.0 / weights[i].bs, 0),
               exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct),
               exp::fmt(r.mapp_mem_util), exp::fmt(writes_per_ms, 1)});
  }
  t.print();
  std::printf("(Large weights react fast but overreact to bursts; small weights react\n"
              " late and let queues build — the paper's §4.1 trade-off.)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool timeseries = false, ewma = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--timeseries")) timeseries = true;
    if (!std::strcmp(argv[i], "--ewma-sweep")) ewma = true;
  }
  const exp::BenchOpts opts =
      exp::parse_bench_opts_or_die(argc, argv, {"--timeseries", "--ewma-sweep"});
  const sim::SweepRunner runner(opts.jobs);

  std::printf("=== Figure 18: necessity of hostCC's mechanisms (3x congestion) ===\n\n");
  run_main_table(opts.quick, runner);
  std::printf("\n");
  if (timeseries) run_timeseries(opts.quick);
  if (ewma) run_ewma_sweep(opts.quick, runner);
  return 0;
}
