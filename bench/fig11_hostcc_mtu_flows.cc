// Figure 11 reproduction: hostCC benefits across MTU sizes and flow counts
// at 3x host congestion (DDIO off).
// Paper: hostCC maintains ~B_T throughput and orders-of-magnitude lower
// drop rates for every MTU and flow count.
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Figure 11: hostCC across MTU and flow count (3x, DDIO off) ===\n\n");

  auto make_cfg = [&](bool hostcc) {
    exp::ScenarioConfig cfg;
    cfg.mapp_degree = 3.0;
    cfg.hostcc_enabled = hostcc;
    if (quick) {
      cfg.warmup = sim::Time::milliseconds(60);
      cfg.measure = sim::Time::milliseconds(60);
    }
    return cfg;
  };

  std::printf("-- MTU sweep, 4 flows --\n");
  exp::Table tm({"mtu", "mode", "net_tput_gbps", "drop_rate_pct"});
  for (const sim::Bytes mtu : {1500, 4000, 9000}) {
    for (const bool hostcc : {false, true}) {
      exp::ScenarioConfig cfg = make_cfg(hostcc);
      cfg.transport.mtu = mtu;
      exp::Scenario s(cfg);
      const auto r = s.run();
      tm.add_row({std::to_string(mtu) + "B", hostcc ? "dctcp+hostcc" : "dctcp",
                  exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct)});
    }
  }
  tm.print();

  std::printf("\n-- flow-count sweep, 4000B MTU --\n");
  exp::Table tf({"flows", "mode", "net_tput_gbps", "drop_rate_pct"});
  for (const int flows : {4, 8, 16}) {
    for (const bool hostcc : {false, true}) {
      exp::ScenarioConfig cfg = make_cfg(hostcc);
      cfg.netapp_flows = flows;
      exp::Scenario s(cfg);
      const auto r = s.run();
      tf.add_row({std::to_string(flows), hostcc ? "dctcp+hostcc" : "dctcp",
                  exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct)});
    }
  }
  tf.print();

  std::printf("\n(Paper: hostCC holds ~B_T and near-zero drops across all MTUs/flows.)\n");
  return 0;
}
