// Figure 16 reproduction: hostCC sensitivity to the target network
// bandwidth B_T (10..100Gbps) at 3x host congestion, DDIO off.
// Paper: achieved throughput tracks B_T while drops stay minimal across
// the whole range (lowest at small and large B_T); MApp memory share
// shrinks as B_T grows.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "exp/cli.h"
#include "exp/scenario.h"
#include "exp/table.h"
#include "sim/sweep_runner.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const exp::BenchOpts opts = exp::parse_bench_opts_or_die(argc, argv);

  std::printf("=== Figure 16: sensitivity to target network bandwidth B_T (3x, I_T=70) ===\n\n");

  std::vector<int> bts;
  for (int bt = 10; bt <= 100; bt += opts.quick ? 20 : 10) bts.push_back(bt);

  std::vector<std::function<exp::ScenarioResults()>> tasks;
  for (const int bt : bts) {
    tasks.emplace_back([bt, quick = opts.quick] {
      exp::ScenarioConfig cfg;
      cfg.mapp_degree = 3.0;
      cfg.hostcc_enabled = true;
      cfg.hostcc.target_bandwidth = sim::Bandwidth::gbps(bt);
      cfg.record_signals = true;
      if (quick) {
        cfg.warmup = sim::Time::milliseconds(60);
        cfg.measure = sim::Time::milliseconds(60);
      }
      exp::Scenario s(cfg);
      return s.run();
    });
  }
  const auto results = sim::SweepRunner(opts.jobs).run(std::move(tasks));

  exp::Table t({"B_T_gbps", "net_tput_gbps", "drop_rate_pct", "netapp_mem_util",
                "mapp_mem_util", "avg_IS", "avg_BS_gbps"});
  for (std::size_t i = 0; i < bts.size(); ++i) {
    const auto& r = results[i];
    t.add_row({std::to_string(bts[i]), exp::fmt(r.net_tput_gbps),
               exp::fmt_rate(r.host_drop_rate_pct), exp::fmt(r.net_mem_util),
               exp::fmt(r.mapp_mem_util), exp::fmt(r.avg_iio_occupancy, 1),
               exp::fmt(r.avg_pcie_gbps, 1)});
  }
  t.print();

  std::printf("\n(Paper: throughput tracks B_T; drops minimal across all B_T; MApp only\n"
              " backpressured as much as needed.)\n");
  return 0;
}
