// Figure 22 (extension): pause storms in a lossless fabric, and what hostCC
// does to them. Over a lossless (PFC) leaf-spine fabric, MApp contention on
// host 0 makes its NIC drain slowly, the RX ring crosses its watermark, and
// the host pauses its leaf delivery port. The pause backs up the leaf's
// shared buffer, which XOFFs the spines, which back up in turn — a
// congestion tree. Victim flows (not even touching host 0) stall behind
// those paused ports: the lossless fabric's HoL-blocking failure mode,
// measured here as victim P99 FCT.
//
//   (a) host-congestion pauses (incast into the MApp-loaded host), hostCC
//       off vs on: pause-frame rate and congestion-tree depth. hostCC
//       throttles the MApp at the memory controller, the NIC drains at
//       line rate again, and the pause source dries up — the lossless
//       analogue of Fig. 10's drop relief.
//   (b) pause_storm fault (500 us forced XOFF on the congested host's
//       edge) on top of (a): time-to-drain after the storm lifts and the
//       FCT tail, again off vs on. With hostCC the backlog the storm built
//       drains at line rate the moment it lifts; without it the slow host
//       keeps the congestion tree standing long after the fault is gone.
//
// Every run must be genuinely lossless: a single switch drop, an
// unbalanced pause ledger, or any other invariant violation fails the
// binary.
//
//   --json     byte-stable machine-readable results (no wall-clock)
//   --quick    shorter windows (CI)
//   --shards N sharded execution (same bytes for every N >= 1)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/fabric_scenario.h"
#include "exp/table.h"

using namespace hostcc;

namespace {

struct Options {
  bool quick = false;
  bool json = false;
  int shards = 0;
};

struct RunOut {
  exp::FabricScenarioResults r;
  double xoff_per_ms = 0.0;
  double drain_us = 0.0;  // storm runs: last ledger all-clear after storm end
};

exp::FabricScenarioConfig base_cfg(const Options& opt) {
  exp::FabricScenarioConfig cfg;
  cfg.congested_hosts = 1;
  cfg.lossless = true;
  cfg.shards = opt.shards;
  cfg.record_flow_stats = true;
  cfg.flow_bytes = 64 * sim::kKiB;  // closed-loop messages -> real FCTs
  cfg.warmup = sim::Time::milliseconds(opt.quick ? 2 : 5);
  cfg.measure = sim::Time::milliseconds(opt.quick ? 3 : 10);
  return cfg;
}

// (a) Host congestion as the pause source: 15 -> 1 incast into the MApp-
// loaded host. The pool is deep enough (512 KiB) that fabric congestion
// alone never pauses — every XOFF traces back to the slow host NIC, which
// is exactly the component hostCC governs.
exp::FabricScenarioConfig host_cfg(const Options& opt) {
  exp::FabricScenarioConfig cfg = base_cfg(opt);
  cfg.topology = "leaf-spine:2x8";  // 16 hosts, 15 -> 1 incast
  cfg.traffic = exp::FabricTraffic::kIncast;
  cfg.flows_per_pair = 2;
  cfg.mapp_degree = 3.0;  // heavy MApp on h0 -> NIC drains slowly
  cfg.fabric.buffer_bytes = 512 * sim::kKiB;
  return cfg;
}

RunOut run_one(exp::FabricScenarioConfig cfg, double storm_end_us, std::uint64_t* violations) {
  const double measure_ms = cfg.measure.us() / 1000.0;
  exp::FabricScenario s(std::move(cfg));
  RunOut out;
  out.r = s.run();
  *violations += out.r.invariant_violations;
  if (out.r.fabric_drops > 0) {
    std::fprintf(stderr, "FAIL: %llu switch drop(s) in lossless mode\n",
                 static_cast<unsigned long long>(out.r.fabric_drops));
    ++*violations;
  }
  out.xoff_per_ms = static_cast<double>(out.r.pfc_xoff_frames) / measure_ms;
  if (storm_end_us > 0.0) {
    out.drain_us = std::max(0.0, out.r.pause_last_all_clear_us - storm_end_us);
  }
  return out;
}

std::string run_json(const char* mode, const RunOut& o) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"mode\":\"%s\",\"pfc_xoff_frames\":%llu,\"xoff_per_ms\":%.2f,"
                "\"pause_tree_depth_peak\":%d,\"pause_max_outstanding\":%d,"
                "\"fct_p50_us\":%.1f,\"fct_p99_us\":%.1f,\"drain_us\":%.1f,"
                "\"net_tput_gbps\":%.4f,\"fabric_drops\":%llu,"
                "\"invariant_violations\":%llu}",
                mode, static_cast<unsigned long long>(o.r.pfc_xoff_frames), o.xoff_per_ms,
                o.r.pause_tree_depth_peak, o.r.pause_max_outstanding, o.r.fct_p50_us,
                o.r.fct_p99_us, o.drain_us, o.r.net_tput_gbps,
                static_cast<unsigned long long>(o.r.fabric_drops),
                static_cast<unsigned long long>(o.r.invariant_violations));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--json") {
      opt.json = true;
    } else if (a == "--shards" && i + 1 < argc) {
      opt.shards = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json] [--shards N]\n", argv[0]);
      return 2;
    }
  }

  std::uint64_t violations = 0;
  std::vector<std::string> host_json, storm_json;

  if (!opt.json) {
    std::printf("=== Figure 22: PFC pause storms behind a lossless leaf-spine fabric ===\n\n");
    std::printf("-- (a) host-congestion pauses (MApp on h0), hostCC off vs on --\n");
  }
  exp::Table ta({"mode", "xoff_frames", "xoff_per_ms", "tree_depth", "peak_paused",
                 "fct_p99_us", "inv"});
  for (const bool hostcc : {false, true}) {
    exp::FabricScenarioConfig cfg = host_cfg(opt);
    cfg.hostcc_enabled = hostcc;
    const RunOut o = run_one(std::move(cfg), 0.0, &violations);
    const char* mode = hostcc ? "lossless+hostcc" : "lossless";
    if (opt.json) host_json.push_back(run_json(mode, o));
    ta.add_row({mode, std::to_string(o.r.pfc_xoff_frames), exp::fmt(o.xoff_per_ms, 1),
                std::to_string(o.r.pause_tree_depth_peak),
                std::to_string(o.r.pause_max_outstanding), exp::fmt(o.r.fct_p99_us, 1),
                std::to_string(o.r.invariant_violations)});
  }
  if (!opt.json) ta.print();

  // (b) 500 us forced-XOFF storm on the congested host's edge, injected
  // mid-measurement. Victim flows never touch h0, yet their tail inflates
  // while the congestion tree stands; time-to-drain is how long the fabric
  // takes to go pause-free after the storm lifts.
  const double storm_start_us = (opt.quick ? 2.0 : 5.0) * 1000.0 + 1000.0;
  const double storm_dur_us = 500.0;
  const std::string spec = "pause_storm@" + std::to_string(storm_start_us) + "+" +
                           std::to_string(storm_dur_us) + ":0:h0-leaf0";
  if (!opt.json) {
    std::printf("\n-- (b) + pause_storm (500 us on h0-leaf0), hostCC off vs on --\n");
  }
  exp::Table tb({"mode", "xoff_frames", "tree_depth", "fct_p99_us", "drain_us", "inv"});
  for (const bool hostcc : {false, true}) {
    exp::FabricScenarioConfig cfg = host_cfg(opt);
    cfg.hostcc_enabled = hostcc;
    if (auto err = cfg.faults.add_spec(spec)) {
      std::fprintf(stderr, "%s\n", err->c_str());
      return 2;
    }
    const RunOut o = run_one(std::move(cfg), storm_start_us + storm_dur_us, &violations);
    const char* mode = hostcc ? "storm+hostcc" : "storm";
    if (opt.json) storm_json.push_back(run_json(mode, o));
    tb.add_row({mode, std::to_string(o.r.pfc_xoff_frames),
                std::to_string(o.r.pause_tree_depth_peak), exp::fmt(o.r.fct_p99_us, 1),
                exp::fmt(o.drain_us, 1), std::to_string(o.r.invariant_violations)});
  }
  if (!opt.json) tb.print();

  if (opt.json) {
    std::printf("{\n  \"host_pauses\": [");
    for (std::size_t i = 0; i < host_json.size(); ++i) {
      std::printf("%s\n    %s", i ? "," : "", host_json[i].c_str());
    }
    std::printf("\n  ],\n  \"storm\": [");
    for (std::size_t i = 0; i < storm_json.size(); ++i) {
      std::printf("%s\n    %s", i ? "," : "", storm_json[i].c_str());
    }
    std::printf("\n  ]\n}\n");
  } else {
    std::printf("\n(Lossless fabrics trade drops for HoL blocking: the congested host's\n"
                " pauses back up into a congestion tree that stalls victim flows. hostCC\n"
                " removes the host-side pause source — fewer pause frames, a shallower\n"
                " tree, and a faster post-storm drain — without giving up losslessness.)\n");
  }

  if (violations > 0) {
    std::fprintf(stderr, "FAIL: %llu invariant violation(s) / lossless drops\n",
                 static_cast<unsigned long long>(violations));
    return 1;
  }
  return 0;
}
