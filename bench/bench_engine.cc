// google-benchmark microbenchmarks for the simulation engine's hot paths:
// event queue churn, EWMA updates, histogram recording/percentiles, the
// memory-controller water-fill quantum, and the observability layer's
// disabled-path overhead on the host datapath.
#include <benchmark/benchmark.h>

#include "exp/fabric_scenario.h"
#include "exp/scenario.h"
#include "host/config.h"
#include "host/host.h"
#include "host/memctrl.h"
#include "net/packet.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/ewma.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace {

using namespace hostcc;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t t = 0;
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(sim::Time::picoseconds(t + (i * 37) % 1000), [&sink] { ++sink; });
    }
    while (!q.empty()) {
      auto [when, fn] = q.pop();
      benchmark::DoNotOptimize(when);
      fn();
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EventCancellation(benchmark::State& state) {
  sim::EventQueue q;
  for (auto _ : state) {
    std::vector<sim::EventHandle> handles;
    handles.reserve(64);
    for (int i = 0; i < 64; ++i) {
      handles.push_back(q.push(sim::Time::nanoseconds(i), [] {}));
    }
    for (auto& h : handles) h.cancel();
    benchmark::DoNotOptimize(q.empty());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventCancellation);

// The datapath's characteristic event: a lambda carrying a pooled packet
// handle (packets ride through the event core as 8-byte PacketRefs, never
// by value). Must stay within the event pool's inline storage.
void BM_EventQueuePushPopRefCapture(benchmark::State& state) {
  sim::EventQueue q;
  net::PacketPool pool;
  net::PacketRef pkt = pool.make();
  pkt->payload = 4030;
  std::int64_t t = 0;
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(sim::Time::picoseconds(t + (i * 37) % 1000), [&sink, pkt] { sink += pkt->payload; });
    }
    while (!q.empty()) {
      auto [when, fn] = q.pop();
      benchmark::DoNotOptimize(when);
      fn();
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPopRefCapture);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 256; ++i) {
      sim.after(sim::Time::nanoseconds(i * 3), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SimulatorTimerChurn);

void BM_EwmaAdd(benchmark::State& state) {
  sim::Ewma e(1.0 / 8.0);
  double v = 0.0;
  for (auto _ : state) {
    e.add(v);
    v += 1.25;
    benchmark::DoNotOptimize(e.value());
  }
}
BENCHMARK(BM_EwmaAdd);

void BM_HistogramRecord(benchmark::State& state) {
  sim::Histogram h;
  std::int64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 1103515245 + 12345) & 0xFFFFFFF;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  sim::Histogram h;
  for (std::int64_t i = 1; i < 100000; ++i) h.record(i * 7919 % 1000000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(0.99));
  }
}
BENCHMARK(BM_HistogramPercentile);

class ConstantSource : public host::MemSource {
 public:
  explicit ConstantSource(double demand) : demand_(demand) {}
  std::string name() const override { return "bench"; }
  Offer mem_offer(sim::Time, sim::Time) override { return {demand_, demand_}; }
  void mem_granted(sim::Time, double) override {}

 private:
  double demand_;
};

void BM_MemControllerQuantum(benchmark::State& state) {
  sim::Simulator sim;
  host::HostConfig cfg;
  host::MemoryController mc(sim, cfg);
  ConstantSource a(4000), b(8000), c(2000), d(1000);
  mc.add_source(&a, true);
  mc.add_source(&b, false);
  mc.add_source(&c, true);
  mc.add_source(&d, false);
  sim::Time horizon = sim.now();
  for (auto _ : state) {
    horizon += cfg.mc_quantum;
    sim.run_until(horizon);  // executes exactly one scheduling quantum
    benchmark::DoNotOptimize(mc.utilization());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemControllerQuantum);

// Observability overhead: push a batch of packets through the full host
// datapath (NIC -> PCIe -> IIO -> memory -> CPU) under three tracer
// configurations. The acceptance bar is <2% events/sec regression for
// "attached but disabled" vs. "no tracer" — the disabled fast path is one
// branch per hook.
//   /0: no tracer attached
//   /1: tracer attached, disabled (the production configuration)
//   /2: tracer attached, enabled
void BM_HostDatapathTracer(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int kPackets = 2000;
  constexpr sim::Bytes kPayload = 4030;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    host::HostModel host(sim, host::HostConfig{}, "bench");
    host.set_stack_rx([](net::Packet) {});
    obs::PacketTracer tracer("bench");
    if (mode >= 1) {
      tracer.set_enabled(mode == 2);
      host.set_tracer(&tracer);
    }
    // Pace arrivals at ~80Gbps, spread over four flows (CPU processing is
    // per-flow serialized) so the NIC never overflows, every packet
    // completes, and every mode does identical datapath work.
    const sim::Time gap = sim::Time::nanoseconds(410);
    net::PacketPool pool;
    for (int i = 0; i < kPackets; ++i) {
      net::PacketRef p = pool.make();
      p->id = static_cast<std::uint64_t>(i) + 1;
      p->flow = 5 + static_cast<net::FlowId>(i % 4);
      p->dst = 0;
      p->payload = kPayload;
      p->size = kPayload + net::kHeaderBytes;
      sim.after(gap * i, [&host, p = std::move(p)]() mutable {
        host.receive_from_wire(std::move(p));
      });
    }
    // The host's periodic timers never drain the queue; run a fixed sim
    // horizon comfortably past the last arrival instead.
    sim.run_until(sim::Time::milliseconds(2));
    events += sim.events_executed();
    if (mode == 2 && tracer.packets_completed() != kPackets) {
      state.SkipWithError("trace incomplete");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_HostDatapathTracer)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// The PR-level headline metric: wall-clock packet throughput of a warm
// end-to-end scenario (sender transport -> wire -> switch -> receiver NIC
// -> PCIe -> IIO -> MC -> CPU -> transport, ACKs clocking back). Setup and
// warmup run outside the timed region; each iteration advances the warm
// simulation by a fixed slice, so items/sec is delivered packets per
// second of wall time.
//   /0: plain datapath
//   /1: hostCC enabled with contending MApp (sampler + MBA active)
void BM_ScenarioPacketsPerSecond(benchmark::State& state) {
  exp::ScenarioConfig cfg;
  cfg.warmup = sim::Time::milliseconds(20);
  cfg.measure = sim::Time::milliseconds(5);
  if (state.range(0) == 1) {
    cfg.hostcc_enabled = true;
    cfg.mapp_degree = 2.0;
  }
  exp::Scenario s(std::move(cfg));
  s.run_warmup();
  s.run_for(sim::Time::milliseconds(5));  // settle past slow start's tail
  std::uint64_t pkts = 0;
  for (auto _ : state) {
    const std::uint64_t before = s.receiver().nic().stats().arrived_pkts;
    s.run_for(sim::Time::milliseconds(1));
    pkts += s.receiver().nic().stats().arrived_pkts - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pkts));
}
BENCHMARK(BM_ScenarioPacketsPerSecond)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Self-profiler overhead on the same warm end-to-end scenario. The
// acceptance bar (enforced by tools/bench_json.py's ratio gate) is <=1%
// items/sec regression for "attached but disabled" vs. "detached" — the
// disabled fast path resolves to a null handle at ProfScope construction,
// one predictable branch per instrumented hot path.
//   /0: profiler detached (no handles wired)
//   /1: profiler attached to every component, disabled (production config)
//   /2: profiler attached and enabled (collection on)
void BM_ScenarioProfilerOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  exp::ScenarioConfig cfg;
  cfg.warmup = sim::Time::milliseconds(20);
  cfg.measure = sim::Time::milliseconds(5);
  exp::Scenario s(std::move(cfg));
  if (mode >= 1) s.attach_profiler(mode == 2);
  s.run_warmup();
  s.run_for(sim::Time::milliseconds(5));  // settle past slow start's tail
  std::uint64_t pkts = 0;
  for (auto _ : state) {
    const std::uint64_t before = s.receiver().nic().stats().arrived_pkts;
    s.run_for(sim::Time::milliseconds(1));
    pkts += s.receiver().nic().stats().arrived_pkts - before;
  }
  if (mode == 2) {
    std::uint64_t scopes = 0;
    for (const auto& t : s.profiler().tags()) scopes += t.scopes;
    if (scopes == 0) {
      state.SkipWithError("profiler collected nothing");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pkts));
}
BENCHMARK(BM_ScenarioProfilerOverhead)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// Rack-scale headline: wall-clock packet throughput of a warm multi-switch
// fabric run (N full HostModels incasting through a shared-buffer fabric
// with ECMP). Arg = participating hosts; up to 16 the topology stays
// leaf-spine:4x4 (fixed switch count, scaling fan-in); 32 and 64 hosts run
// on leaf-spine:8x8 so the tail args also scale the switch count. items/sec
// is packets arriving at the incast destination's NIC per second of wall
// time.
void BM_FabricHostScaling(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  exp::FabricScenarioConfig cfg;
  cfg.topology = hosts <= 16 ? "leaf-spine:4x4" : "leaf-spine:8x8";
  cfg.hosts = hosts;
  cfg.mapp_degree = 0.0;
  cfg.warmup = sim::Time::milliseconds(5);
  cfg.measure = sim::Time::milliseconds(2);
  exp::FabricScenario s(std::move(cfg));
  s.run_warmup();
  s.run_for(sim::Time::milliseconds(5));  // settle past slow start's tail
  std::uint64_t pkts = 0;
  for (auto _ : state) {
    const std::uint64_t before = s.host(0).nic().stats().arrived_pkts;
    s.run_for(sim::Time::milliseconds(1));
    pkts += s.host(0).nic().stats().arrived_pkts - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pkts));
}
BENCHMARK(BM_FabricHostScaling)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Sharded-engine scaling: the same warm 64-host fat-tree incast executed by
// the conservative-lookahead ShardedSimulator on 1..N worker threads
// (args: hosts, shards; shards=0 is the classic single-loop baseline the
// speedup is measured against). The partition is a pure function of the
// topology, so every arg pair produces byte-identical simulation results —
// only the wall clock moves. items/sec counts packets arriving at the
// incast destination per second of wall time, the same figure of merit as
// BM_FabricHostScaling.
void BM_FabricShardScaling(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  exp::FabricScenarioConfig cfg;
  cfg.topology = hosts <= 16 ? "fat-tree:4" : "fat-tree:8";
  cfg.hosts = hosts;
  cfg.shards = static_cast<int>(state.range(1));
  cfg.mapp_degree = 0.0;
  cfg.warmup = sim::Time::milliseconds(5);
  cfg.measure = sim::Time::milliseconds(2);
  exp::FabricScenario s(std::move(cfg));
  s.run_warmup();
  s.run_for(sim::Time::milliseconds(5));  // settle past slow start's tail
  std::uint64_t pkts = 0;
  for (auto _ : state) {
    const std::uint64_t before = s.host(0).nic().stats().arrived_pkts;
    s.run_for(sim::Time::milliseconds(1));
    pkts += s.host(0).nic().stats().arrived_pkts - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pkts));
}
// UseRealTime matters: with workers, the main thread blocks at epoch
// barriers while peers simulate, so its CPU time (benchmark's default
// items/sec denominator) undercounts by ~1/workers and fakes a speedup.
BENCHMARK(BM_FabricShardScaling)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Hybrid-fidelity scaling: the same warm incast with the host tier under
// --fidelity control (args: hosts, fidelity; 0 = all-full baseline, 1 =
// auto — senders flow-level analytic, the victim pinned to the full
// packet-level tier). The victim's datapath is bit-for-bit the full model
// in both modes, so items/sec (victim NIC arrivals per wall second) is
// directly comparable; the hybrid rows show how much larger a fabric one
// core sustains when only congested hosts pay packet-level prices.
void BM_HybridFidelityScaling(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  const bool hybrid = state.range(1) != 0;
  exp::FabricScenarioConfig cfg;
  cfg.topology = hosts <= 64 ? "leaf-spine:8x8" : "leaf-spine:16x40";
  cfg.hosts = hosts;
  cfg.fidelity = hybrid ? exp::HostFidelity::kAuto : exp::HostFidelity::kFull;
  cfg.mapp_degree = 0.0;
  cfg.warmup = sim::Time::milliseconds(5);
  exp::FabricScenario s(std::move(cfg));
  s.run_warmup();
  s.run_for(sim::Time::milliseconds(5));  // settle past slow start's tail
  const auto arrived = [&s] {
    return s.hybrid() ? s.slot(0).arrived_pkts() : s.host(0).nic().stats().arrived_pkts;
  };
  std::uint64_t pkts = 0;
  for (auto _ : state) {
    const std::uint64_t before = arrived();
    s.run_for(sim::Time::milliseconds(1));
    pkts += arrived() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pkts));
}
BENCHMARK(BM_HybridFidelityScaling)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({640, 1})
    ->Unit(benchmark::kMillisecond);

// Workload-engine churn throughput: a warm open-loop Poisson churn
// (fixed-size messages through the pooled stacks — endpoint opens are
// free-list rebinds, closes park the node) on a small leaf-spine fabric.
// items/sec counts completed flow episodes per second of wall time: the
// figure of merit for connection-churn capacity (arg: offered load as a
// percentage of host bisection bandwidth).
void BM_WorkloadChurn(benchmark::State& state) {
  exp::FabricScenarioConfig cfg;
  cfg.topology = "leaf-spine:2x2";
  cfg.warmup = sim::Time::milliseconds(5);
  cfg.workload.enabled = true;
  cfg.workload.load = static_cast<double>(state.range(0)) / 100.0;
  cfg.workload.size_dist = "fixed:16384";
  cfg.workload.slots_per_pair = 16;
  cfg.workload.reuse_cooldown = sim::Time::microseconds(50);
  exp::FabricScenario s(std::move(cfg));
  s.run_warmup();
  s.run_for(sim::Time::milliseconds(5));  // settle: pools at high water
  const auto completed = [&s] {
    std::uint64_t n = 0;
    for (int i = 0; s.host_workload(i) != nullptr; ++i) {
      n += s.host_workload(i)->flows_completed();
    }
    return n;
  };
  std::uint64_t flows = 0;
  for (auto _ : state) {
    const std::uint64_t before = completed();
    s.run_for(sim::Time::milliseconds(1));
    flows += completed() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows));
}
BENCHMARK(BM_WorkloadChurn)->Arg(30)->Arg(70)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
