// google-benchmark microbenchmarks for the simulation engine's hot paths:
// event queue churn, EWMA updates, histogram recording/percentiles, and
// the memory-controller water-fill quantum.
#include <benchmark/benchmark.h>

#include "host/config.h"
#include "host/memctrl.h"
#include "sim/event_queue.h"
#include "sim/ewma.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace {

using namespace hostcc;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t t = 0;
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(sim::Time::picoseconds(t + (i * 37) % 1000), [&sink] { ++sink; });
    }
    while (!q.empty()) {
      auto [when, fn] = q.pop();
      benchmark::DoNotOptimize(when);
      fn();
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EventCancellation(benchmark::State& state) {
  sim::EventQueue q;
  for (auto _ : state) {
    std::vector<sim::EventHandle> handles;
    handles.reserve(64);
    for (int i = 0; i < 64; ++i) {
      handles.push_back(q.push(sim::Time::nanoseconds(i), [] {}));
    }
    for (auto& h : handles) h.cancel();
    benchmark::DoNotOptimize(q.empty());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventCancellation);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 256; ++i) {
      sim.after(sim::Time::nanoseconds(i * 3), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SimulatorTimerChurn);

void BM_EwmaAdd(benchmark::State& state) {
  sim::Ewma e(1.0 / 8.0);
  double v = 0.0;
  for (auto _ : state) {
    e.add(v);
    v += 1.25;
    benchmark::DoNotOptimize(e.value());
  }
}
BENCHMARK(BM_EwmaAdd);

void BM_HistogramRecord(benchmark::State& state) {
  sim::Histogram h;
  std::int64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 1103515245 + 12345) & 0xFFFFFFF;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  sim::Histogram h;
  for (std::int64_t i = 1; i < 100000; ++i) h.record(i * 7919 % 1000000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(0.99));
  }
}
BENCHMARK(BM_HistogramPercentile);

class ConstantSource : public host::MemSource {
 public:
  explicit ConstantSource(double demand) : demand_(demand) {}
  std::string name() const override { return "bench"; }
  Offer mem_offer(sim::Time, sim::Time) override { return {demand_, demand_}; }
  void mem_granted(sim::Time, double) override {}

 private:
  double demand_;
};

void BM_MemControllerQuantum(benchmark::State& state) {
  sim::Simulator sim;
  host::HostConfig cfg;
  host::MemoryController mc(sim, cfg);
  ConstantSource a(4000), b(8000), c(2000), d(1000);
  mc.add_source(&a, true);
  mc.add_source(&b, false);
  mc.add_source(&c, true);
  mc.add_source(&d, false);
  sim::Time horizon = sim.now();
  for (auto _ : state) {
    horizon += cfg.mc_quantum;
    sim.run_until(horizon);  // executes exactly one scheduling quantum
    benchmark::DoNotOptimize(mc.utilization());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemControllerQuantum);

}  // namespace

BENCHMARK_MAIN();
