// Figure 14 reproduction: Figure 10 with DDIO enabled (I_T = 50, per §5.2:
// idle IIO occupancy is lower with DDIO because of the shorter IIO->LLC
// path, so the congestion threshold shifts down accordingly).
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Figure 14: hostCC benefits with DDIO enabled (I_T=50, B_T=80) ===\n\n");

  exp::Table t({"degree", "mode", "net_tput_gbps", "drop_rate_pct", "netapp_mem_util",
                "mapp_mem_util", "avg_IS", "avg_BS_gbps"});
  for (const double degree : {0.0, 1.0, 2.0, 3.0}) {
    for (const bool hostcc : {false, true}) {
      exp::ScenarioConfig cfg;
      cfg.host.ddio_enabled = true;
      cfg.mapp_degree = degree;
      cfg.hostcc_enabled = hostcc;
      cfg.hostcc.iio_threshold = 50.0;  // §5.2
      cfg.record_signals = true;
      if (quick) {
        cfg.warmup = sim::Time::milliseconds(60);
        cfg.measure = sim::Time::milliseconds(60);
      }
      exp::Scenario s(cfg);
      const auto r = s.run();
      t.add_row({exp::fmt(degree, 0) + "x", hostcc ? "dctcp+hostcc" : "dctcp",
                 exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct),
                 exp::fmt(r.net_mem_util), exp::fmt(r.mapp_mem_util),
                 exp::fmt(r.avg_iio_occupancy, 1), exp::fmt(r.avg_pcie_gbps, 1)});
    }
  }
  t.print();

  std::printf("\n(Paper: same trends as DDIO-off Fig. 10 — target bandwidth maintained,\n"
              " drops cut (by ~37x at 3x), MApp keeps a somewhat larger share than in\n"
              " the DDIO-off case because less backpressure is needed.)\n");
  return 0;
}
