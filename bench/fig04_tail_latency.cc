// Figure 4 reproduction: NetApp-L (netperf-RR style) latency percentiles
// with and without host congestion, with NetApp-T and MApp running
// concurrently, DDIO disabled.
// Paper: P50 grows modestly; P99 inflation is ~60-100us (NIC queueing);
// P99.9 jumps to ~200ms for small RPCs (Linux min RTO — a single dropped
// response packet cannot be probed), while larger RPCs are saved by TLP.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::vector<sim::Bytes> sizes = {128, 512, 2048, 8192, 32768};

  std::printf("=== Figure 4: RPC tail latency with/without host congestion (DDIO off) ===\n");
  std::printf("Setup: NetApp-T + NetApp-L + MApp together; latencies in microseconds.\n\n");

  for (const double degree : {0.0, 3.0}) {
    std::printf("-- %s host congestion --\n", degree == 0.0 ? "no" : "3x");
    exp::Table t({"rpc_size", "count", "p50_us", "p90_us", "p99_us", "p99.9_us", "p99.99_us"});
    exp::ScenarioConfig cfg;
    cfg.mapp_degree = degree;
    cfg.rpc_sizes = sizes;
    // Tail percentiles need many RPCs and must observe 200ms RTO events.
    cfg.warmup = sim::Time::milliseconds(quick ? 150 : 300);
    cfg.measure = sim::Time::milliseconds(quick ? 800 : 3000);
    exp::Scenario s(cfg);
    const auto r = s.run();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& l = r.rpc_latency[i];
      t.add_row({std::to_string(sizes[i]) + "B", std::to_string(l.count),
                 exp::fmt(l.p50.us(), 1), exp::fmt(l.p90.us(), 1), exp::fmt(l.p99.us(), 1),
                 exp::fmt(l.p999.us(), 1), exp::fmt(l.p9999.us(), 1)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("(Paper: with 3x congestion, P99 inflates by ~60-100us and P99.9 reaches\n"
              " ~200ms (min RTO) for small RPCs; TLP saves larger RPCs.)\n");
  return 0;
}
