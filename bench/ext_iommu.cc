// Extension experiment (§6): IOMMU-induced host congestion. IOTLB misses
// stall inbound DMA writes regardless of memory-controller load, so host
// congestion appears *without any MApp* — the PCIe underutilization case
// the paper attributes to memory-protection hardware [1, 9].
//
// hostCC's IIO-occupancy signal still observes the congestion (the stalls
// inflate residence), and the ECN echo still moderates the senders — but
// the host-local response has no host-local traffic to throttle, which is
// exactly why §6 calls for additional signals/actuators for this case.
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("=== Extension: IOMMU-induced host congestion (no MApp) ===\n\n");

  exp::Table t({"iotlb_miss_rate", "mode", "net_tput_gbps", "drop_rate_pct", "avg_IS",
                "avg_BS_gbps"});
  for (const double miss : {0.0, 0.2, 0.4, 0.6}) {
    for (const bool hostcc : {false, true}) {
      exp::ScenarioConfig cfg;
      cfg.mapp_degree = 0.0;  // no memory contention at all
      cfg.host.iommu_enabled = miss > 0.0;
      cfg.host.iotlb_miss_rate = miss;
      cfg.hostcc_enabled = hostcc;
      cfg.record_signals = true;
      if (quick) {
        cfg.warmup = sim::Time::milliseconds(60);
        cfg.measure = sim::Time::milliseconds(60);
      }
      exp::Scenario s(cfg);
      const auto r = s.run();
      t.add_row({exp::fmt(miss, 1), hostcc ? "dctcp+hostcc" : "dctcp",
                 exp::fmt(r.net_tput_gbps), exp::fmt_rate(r.host_drop_rate_pct),
                 exp::fmt(r.avg_iio_occupancy, 1), exp::fmt(r.avg_pcie_gbps, 1)});
    }
  }
  t.print();

  std::printf("\n(IOTLB stalls inflate IIO residence: I_S rises and B_S falls with the\n"
              " miss rate even though DRAM is idle; the ECN echo still tames drops.)\n");
  return 0;
}
