// Figure 19 reproduction: hostCC steady-state behaviour over a 250us
// window at 3x host congestion — measured PCIe bandwidth vs. B_T, the
// host-local response level, and the IIO occupancy vs. I_T.
// Paper: PCIe bandwidth hugs B_T (+overheads ~84Gbps), the level
// oscillates between 3 and 4, and I_S stays near/below I_T = 70.
#include <cstdio>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace hostcc;

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  exp::ScenarioConfig cfg;
  cfg.mapp_degree = 3.0;
  cfg.hostcc_enabled = true;
  cfg.record_signals = true;
  cfg.warmup = sim::Time::milliseconds(250);
  cfg.measure = sim::Time::milliseconds(2);

  exp::Scenario s(cfg);
  s.run_warmup();
  const sim::Time t0 = s.simulator().now();
  s.run_for(sim::Time::microseconds(250));
  const sim::Time t1 = s.simulator().now();

  if (csv) {
    std::printf("time_us,pcie_gbps,level,iio_occ\n");
    const auto& bs = s.bs_series().samples();
    const auto& lvl = s.level_series().samples();
    const auto& is = s.is_series().samples();
    for (std::size_t i = 0; i < bs.size(); ++i) {
      if (bs[i].t < t0 || bs[i].t > t1) continue;
      std::printf("%.2f,%.2f,%.0f,%.1f\n", (bs[i].t - t0).us(), bs[i].value, lvl[i].value,
                  is[i].value);
    }
    return 0;
  }

  std::printf("=== Figure 19: hostCC steady state over 250us (3x congestion) ===\n\n");
  // 25us-binned series, like reading values off the paper's plots.
  exp::Table t({"t_us", "pcie_bw_gbps", "response_level", "iio_occupancy"});
  for (int bin = 0; bin < 10; ++bin) {
    const sim::Time a = t0 + sim::Time::microseconds(25.0 * bin);
    const sim::Time b = a + sim::Time::microseconds(25);
    t.add_row({exp::fmt(25.0 * bin, 0), exp::fmt(s.bs_series().mean_over(a, b), 1),
               exp::fmt(s.level_series().mean_over(a, b), 2),
               exp::fmt(s.is_series().mean_over(a, b), 1)});
  }
  t.print();

  const double frac_above_it = s.is_series().fraction_above(t0, t1, 70.0);
  std::printf("\nwindow mean PCIe BW: %.1f Gbps (B_T+overheads ~84);  I_S>I_T fraction: %.2f\n",
              s.bs_series().mean_over(t0, t1), frac_above_it);
  std::printf("level histogram:");
  for (int l = 0; l <= 4; ++l) {
    std::size_t n = 0, tot = 0;
    for (const auto& sm : s.level_series().samples()) {
      if (sm.t < t0 || sm.t > t1) continue;
      ++tot;
      if (static_cast<int>(sm.value) == l) ++n;
    }
    std::printf("  L%d=%.0f%%", l, tot ? 100.0 * n / tot : 0.0);
  }
  std::printf("\n(Paper: level oscillates between 3 and 4; PCIe BW ~84Gbps; I_S near I_T.)\n");
  return 0;
}
