// Quickstart: build a two-server testbed, create host congestion, attach
// hostCC, and watch it restore network throughput.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This walks the library's three layers explicitly: (1) the host network
// and fabric substrate, (2) the DCTCP transport and applications, (3) the
// hostCC controller.
#include <cstdio>

#include "exp/scenario.h"

using namespace hostcc;

int main() {
  // ---------------------------------------------------------------- setup
  // The Scenario helper assembles the paper's testbed: sender + receiver
  // behind a switch, 100Gbps links, a DCTCP stack per host, NetApp-T long
  // flows, and an MApp generating CPU-to-memory traffic at the receiver.
  exp::ScenarioConfig cfg;
  cfg.mapp_degree = 3.0;       // 24 MApp cores: severe host congestion
  cfg.hostcc_enabled = false;  // start with plain DCTCP
  cfg.warmup = sim::Time::milliseconds(250);
  cfg.measure = sim::Time::milliseconds(100);

  std::printf("== plain DCTCP under 3x host congestion ==\n");
  {
    exp::Scenario s(cfg);
    const exp::ScenarioResults r = s.run();
    std::printf("  NetApp-T goodput : %6.2f Gbps\n", r.net_tput_gbps);
    std::printf("  packet drop rate : %6.3f %%\n", r.host_drop_rate_pct);
    std::printf("  IIO occupancy    : %6.1f cachelines (credit pool: 93)\n",
                r.avg_iio_occupancy);
    std::printf("  MApp memory share: %6.2f of DRAM capacity\n\n", r.mapp_mem_util);
  }

  // ------------------------------------------------------------- hostCC
  // Same workload, now with the hostCC controller on the receiver: it
  // samples the simulated IIO MSRs at sub-microsecond cadence, drives the
  // MBA throttle with the four-regime host-local response, and echoes
  // host congestion into DCTCP via receiver-side ECN marks.
  cfg.hostcc_enabled = true;
  cfg.hostcc.target_bandwidth = sim::Bandwidth::gbps(80.0);  // B_T
  cfg.hostcc.iio_threshold = 70.0;                           // I_T

  std::printf("== DCTCP + hostCC (B_T=80Gbps, I_T=70) ==\n");
  {
    exp::Scenario s(cfg);
    const exp::ScenarioResults r = s.run();
    std::printf("  NetApp-T goodput : %6.2f Gbps\n", r.net_tput_gbps);
    std::printf("  packet drop rate : %6.3f %%\n", r.host_drop_rate_pct);
    std::printf("  IIO occupancy    : %6.1f cachelines\n", r.avg_iio_occupancy);
    std::printf("  MApp memory share: %6.2f of DRAM capacity\n", r.mapp_mem_util);
    std::printf("  host ECN marks   : %llu packets\n",
                static_cast<unsigned long long>(r.ecn_marked_pkts));
    std::printf("  MBA level changes: %llu\n",
                static_cast<unsigned long long>(s.receiver().mba().msr_writes_issued()));
  }

  std::printf("\nhostCC recovers the network's target bandwidth and eliminates host\n"
              "drops by allocating host resources between the two traffic classes.\n");
  return 0;
}
