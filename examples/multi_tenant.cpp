// Multi-tenant scenario (the paper's Fig. 4/12 workload): a throughput
// tenant (NetApp-T), a latency-sensitive RPC tenant (NetApp-L), and a
// host-local memory-intensive tenant (MApp) sharing one receiver host.
// Shows how host congestion destroys the RPC tenant's tail latency and how
// hostCC restores it, using the public Scenario API plus direct component
// access for richer reporting.
#include <cstdio>
#include <vector>

#include "exp/scenario.h"

using namespace hostcc;

namespace {

void report(const char* title, const exp::ScenarioResults& r,
            const std::vector<sim::Bytes>& sizes) {
  std::printf("== %s ==\n", title);
  std::printf("  NetApp-T goodput %.2f Gbps | drops %.4f%%\n", r.net_tput_gbps,
              r.host_drop_rate_pct);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& l = r.rpc_latency[i];
    std::printf("  RPC %6lldB: n=%6llu  p50=%8.1fus  p99=%8.1fus  p99.9=%10.1fus\n",
                static_cast<long long>(sizes[i]), static_cast<unsigned long long>(l.count),
                l.p50.us(), l.p99.us(), l.p999.us());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::vector<sim::Bytes> sizes = {128, 2048, 32768};

  for (const bool hostcc : {false, true}) {
    exp::ScenarioConfig cfg;
    cfg.mapp_degree = 3.0;
    cfg.rpc_sizes = sizes;
    cfg.hostcc_enabled = hostcc;
    cfg.warmup = sim::Time::milliseconds(250);
    cfg.measure = sim::Time::milliseconds(700);  // long enough to expose RTO tails

    exp::Scenario s(cfg);
    const exp::ScenarioResults r = s.run();
    report(hostcc ? "with hostCC" : "plain DCTCP, 3x host congestion", r, sizes);

    if (hostcc) {
      // Component-level introspection: how hard did each mechanism work?
      auto* ctl = s.controller();
      std::printf("controller activity: %llu signal samples, %llu host ECN marks,\n"
                  "%llu MBA level-ups, %llu level-downs\n",
                  static_cast<unsigned long long>(ctl->sampler().samples_taken()),
                  static_cast<unsigned long long>(ctl->echo().packets_marked()),
                  static_cast<unsigned long long>(ctl->response().level_ups()),
                  static_cast<unsigned long long>(ctl->response().level_downs()));
    }
  }
  return 0;
}
