// Custom allocation policy: §3.2 of the paper emphasizes that hostCC does
// not dictate the host resource allocation policy — B_T is a policy input.
// This example implements a demand-tracking policy that grants the network
// a generous target while it is using it, and returns headroom to the
// host-local tenant when the network goes idle — exercised with an on/off
// NetApp-T workload.
#include <cstdio>
#include <memory>

#include "exp/scenario.h"
#include "hostcc/policy.h"

using namespace hostcc;

namespace {

// Tracks the receiver's recent delivered network bandwidth and sets
// B_T = clamp(1.25 * demand, floor, ceiling): an elastic ceiling instead
// of the paper's fixed 80Gbps.
class DemandTrackingPolicy : public core::AllocationPolicy {
 public:
  DemandTrackingPolicy(exp::Scenario*& scenario) : scenario_(scenario) {}

  std::string name() const override { return "demand-tracking"; }

  sim::Bandwidth target_bandwidth(sim::Time now) override {
    if (scenario_ == nullptr) return sim::Bandwidth::gbps(kFloorGbps);
    // Sample delivered goodput once per 100us.
    if (now - last_sample_ >= sim::Time::microseconds(100)) {
      const sim::Bytes delivered = scenario_->netapp_t().delivered_bytes();
      const double gbps =
          sim::Bandwidth::over(delivered - last_bytes_, now - last_sample_).as_gbps();
      last_bytes_ = delivered;
      last_sample_ = now;
      smoothed_ = 0.7 * smoothed_ + 0.3 * gbps;
    }
    // An idle network gets no reservation at all: with B_T = 0 the target
    // is trivially met, so the host-local response releases the MBA
    // throttle (a fixed B_T would hold backpressure forever — see §3.2
    // regime 4, which conservatively never unthrottles below target).
    if (smoothed_ < 1.0) return sim::Bandwidth::zero();
    const double target = std::clamp(1.25 * smoothed_, kFloorGbps, kCeilGbps);
    return sim::Bandwidth::gbps(target);
  }

 private:
  static constexpr double kFloorGbps = 10.0;
  static constexpr double kCeilGbps = 90.0;
  exp::Scenario*& scenario_;
  sim::Time last_sample_;
  sim::Bytes last_bytes_ = 0;
  double smoothed_ = 0.0;
};

}  // namespace

int main() {
  // Build the scenario with the stock fixed-target policy first, then swap
  // in the custom policy by constructing the controller manually.
  exp::Scenario* scenario_ref = nullptr;

  exp::ScenarioConfig cfg;
  cfg.mapp_degree = 3.0;
  cfg.hostcc_enabled = false;  // we attach our own controller below
  cfg.warmup = sim::Time::milliseconds(250);

  exp::Scenario s(cfg);
  scenario_ref = &s;

  core::HostCcConfig cc_cfg;
  core::HostCcController controller(s.receiver(), cc_cfg,
                                    std::make_unique<DemandTrackingPolicy>(scenario_ref));
  controller.start();

  // Phase 1: network active — the policy should track demand upward and
  // defend it against the MApp.
  s.run_warmup();
  auto r1 = s.run_measure();
  std::printf("phase 1 (network busy): goodput %.2f Gbps, B_T now %.1f Gbps, "
              "MApp share %.2f\n",
              r1.net_tput_gbps, controller.policy().target_bandwidth(s.simulator().now()).as_gbps(),
              r1.mapp_mem_util);

  // Phase 2: network goes idle — B_T should collapse to the floor and the
  // MApp should get the host back (no unnecessary backpressure).
  for (int i = 0; i < s.netapp_t().flow_count(); ++i) {
    s.netapp_t().sender_conn(i).set_infinite_source(false);
  }
  s.run_for(sim::Time::milliseconds(50));  // drain
  auto& mc = s.receiver().memctrl();
  mc.checkpoint(s.simulator().now());
  auto& mapp = s.mapp();
  mapp.bandwidth_since_mark(s.simulator().now());
  s.run_for(sim::Time::milliseconds(100));
  const double mapp_gbps =
      mapp.bandwidth_since_mark(s.simulator().now()).as_gigabytes_per_sec();
  std::printf("phase 2 (network idle): B_T now %.1f Gbps, MApp %.1f GBps "
              "(stand-alone 3x is ~34.8), MBA level %d\n",
              controller.policy().target_bandwidth(s.simulator().now()).as_gbps(), mapp_gbps,
              s.receiver().mba().effective_level());

  std::printf("\nThe policy interface lets deployments choose how to divide host\n"
              "resources; hostCC's signals and response are policy-agnostic.\n");
  return 0;
}
