// Incast scenario: many flows from two sender hosts converge on one
// receiver port — fabric congestion at the switch — combined with host
// congestion at the receiver. Demonstrates that hostCC composes with the
// network CC's handling of fabric congestion (the paper's Fig. 13) and
// shows where drops and ECN marks occur (switch vs. host).
#include <cstdio>

#include "exp/scenario.h"

using namespace hostcc;

int main() {
  for (const bool host_congestion : {false, true}) {
    for (const bool hostcc : {false, true}) {
      exp::ScenarioConfig cfg;
      cfg.senders = 2;
      cfg.netapp_flows = 8;  // 2x incast degree
      cfg.mapp_degree = host_congestion ? 3.0 : 0.0;
      cfg.hostcc_enabled = hostcc;
      cfg.warmup = sim::Time::milliseconds(250);
      cfg.measure = sim::Time::milliseconds(100);

      exp::Scenario s(cfg);
      const exp::ScenarioResults r = s.run();
      const auto port = s.fabric().port_stats(0);

      std::printf("== %s host congestion, %s ==\n", host_congestion ? "with" : "no",
                  hostcc ? "dctcp+hostcc" : "dctcp");
      std::printf("  goodput %.2f Gbps | drops: host %.4f%%, fabric %.4f%%\n", r.net_tput_gbps,
                  r.host_drop_rate_pct, r.fabric_drop_rate_pct);
      std::printf("  switch ECN marks %llu | hostCC ECN marks %llu\n\n",
                  static_cast<unsigned long long>(port.marks),
                  static_cast<unsigned long long>(r.ecn_marked_pkts));
    }
  }

  std::printf("hostCC leaves fabric congestion to the switch's marks and adds host\n"
              "marks only when the host itself is the bottleneck.\n");
  return 0;
}
